// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// TPC-H text building blocks: the categorical value lists from the TPC-H
// specification (ship modes, priorities, brands, ...) and a comment
// generator over a grammar-like word pool. The official dbgen tool is not
// available offline; these pools reproduce the *distinct-value and length
// profiles* that the compression estimators are sensitive to (see DESIGN.md
// §2 for the substitution rationale).

#ifndef CFEST_DATAGEN_TPCH_TEXT_H_
#define CFEST_DATAGEN_TPCH_TEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace cfest {
namespace tpch {

/// TPC-H categorical domains (sizes per the specification).
const std::vector<std::string>& ReturnFlags();     // 3: R, A, N
const std::vector<std::string>& LineStatuses();    // 2: O, F
const std::vector<std::string>& ShipModes();       // 7
const std::vector<std::string>& ShipInstructs();   // 4
const std::vector<std::string>& OrderPriorities(); // 5
const std::vector<std::string>& OrderStatuses();   // 3
const std::vector<std::string>& MarketSegments();  // 5
const std::vector<std::string>& Nations();         // 25
const std::vector<std::string>& Regions();         // 5
const std::vector<std::string>& PartContainers();  // 40
const std::vector<std::string>& PartTypes();       // 150
const std::vector<std::string>& PartNameWords();   // 92 color words

/// "Brand#MN" with M,N in 1..5 (25 distinct).
std::string Brand(Random* rng);
/// A part name: five space-separated color words (as in dbgen).
std::string PartName(Random* rng);
/// A pseudo-English comment whose length is uniform in
/// [max_len/3, max_len] characters, built from the TPC-H word pool.
std::string Comment(uint32_t max_len, Random* rng);
/// "NN-NNN-NNN-NNNN" phone with the nation-derived country code.
std::string Phone(uint32_t nation_key, Random* rng);
/// "Clerk#000000NNN" with clerk_count distinct clerks.
std::string Clerk(uint64_t clerk_count, Random* rng);
/// Fixed-pattern entity names, e.g. Name("Customer", 42, 9) ==
/// "Customer#000000042".
std::string Name(const std::string& prefix, uint64_t key, uint32_t digits);
/// A v2 address: random-length alphanumeric string in [10, max_len].
std::string Address(uint32_t max_len, Random* rng);

/// Days since 1970-01-01 for the TPC-H date range [1992-01-01, 1998-12-31].
int64_t RandomDate(Random* rng);

/// A decimal amount in cents, uniform in [min_cents, max_cents].
int64_t RandomCents(int64_t min_cents, int64_t max_cents, Random* rng);

}  // namespace tpch
}  // namespace cfest

#endif  // CFEST_DATAGEN_TPCH_TEXT_H_
