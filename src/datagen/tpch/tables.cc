#include "datagen/tpch/tables.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "datagen/tpch/text.h"

namespace cfest {
namespace tpch {
namespace {

uint64_t Scaled(double sf, uint64_t base) {
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(
                                   sf * static_cast<double>(base))));
}

Schema MakeSchema(std::vector<Column> cols) {
  Result<Schema> schema = Schema::Make(std::move(cols));
  // The schemas below are static and valid by construction.
  return std::move(schema).ValueOrDie();
}

const std::string& Pick(const std::vector<std::string>& pool, Random* rng) {
  return pool[rng->NextBounded(pool.size())];
}

}  // namespace

uint64_t LineitemRows(double sf) { return Scaled(sf, 6000000); }
uint64_t OrdersRows(double sf) { return Scaled(sf, 1500000); }
uint64_t PartRows(double sf) { return Scaled(sf, 200000); }
uint64_t CustomerRows(double sf) { return Scaled(sf, 150000); }
uint64_t SupplierRows(double sf) { return Scaled(sf, 10000); }

Schema LineitemSchema() {
  return MakeSchema({
      {"l_orderkey", Int64Type()},
      {"l_partkey", Int64Type()},
      {"l_suppkey", Int64Type()},
      {"l_linenumber", Int32Type()},
      {"l_quantity", DecimalType()},
      {"l_extendedprice", DecimalType()},
      {"l_discount", DecimalType()},
      {"l_tax", DecimalType()},
      {"l_returnflag", CharType(1)},
      {"l_linestatus", CharType(1)},
      {"l_shipdate", DateType()},
      {"l_commitdate", DateType()},
      {"l_receiptdate", DateType()},
      {"l_shipinstruct", CharType(25)},
      {"l_shipmode", CharType(10)},
      {"l_comment", VarcharType(44)},
  });
}

Schema OrdersSchema() {
  return MakeSchema({
      {"o_orderkey", Int64Type()},
      {"o_custkey", Int64Type()},
      {"o_orderstatus", CharType(1)},
      {"o_totalprice", DecimalType()},
      {"o_orderdate", DateType()},
      {"o_orderpriority", CharType(15)},
      {"o_clerk", CharType(15)},
      {"o_shippriority", Int32Type()},
      {"o_comment", VarcharType(79)},
  });
}

Schema PartSchema() {
  return MakeSchema({
      {"p_partkey", Int64Type()},
      {"p_name", VarcharType(55)},
      {"p_mfgr", CharType(25)},
      {"p_brand", CharType(10)},
      {"p_type", VarcharType(25)},
      {"p_size", Int32Type()},
      {"p_container", CharType(10)},
      {"p_retailprice", DecimalType()},
      {"p_comment", VarcharType(23)},
  });
}

Schema CustomerSchema() {
  return MakeSchema({
      {"c_custkey", Int64Type()},
      {"c_name", VarcharType(25)},
      {"c_address", VarcharType(40)},
      {"c_nationkey", Int32Type()},
      {"c_phone", CharType(15)},
      {"c_acctbal", DecimalType()},
      {"c_mktsegment", CharType(10)},
      {"c_comment", VarcharType(117)},
  });
}

Schema SupplierSchema() {
  return MakeSchema({
      {"s_suppkey", Int64Type()},
      {"s_name", CharType(25)},
      {"s_address", VarcharType(40)},
      {"s_nationkey", Int32Type()},
      {"s_phone", CharType(15)},
      {"s_acctbal", DecimalType()},
      {"s_comment", VarcharType(101)},
  });
}

Result<std::unique_ptr<Table>> GenerateLineitem(const TpchOptions& options) {
  const uint64_t n = LineitemRows(options.scale_factor);
  const uint64_t num_orders = OrdersRows(options.scale_factor);
  const uint64_t num_parts = PartRows(options.scale_factor);
  const uint64_t num_suppliers = SupplierRows(options.scale_factor);
  Random rng(options.seed ^ 0x11111111u);
  TableBuilder builder(LineitemSchema());
  builder.Reserve(n);

  uint64_t orderkey = 1;
  int32_t linenumber = 1;
  uint64_t lines_in_order = 1 + rng.NextBounded(7);
  for (uint64_t i = 0; i < n; ++i) {
    if (static_cast<uint64_t>(linenumber) > lines_in_order) {
      orderkey = std::min(orderkey + 1, num_orders);
      linenumber = 1;
      lines_in_order = 1 + rng.NextBounded(7);
    }
    const int64_t shipdate = RandomDate(&rng);
    Row row = {
        Value::Int(static_cast<int64_t>(orderkey)),
        Value::Int(static_cast<int64_t>(1 + rng.NextBounded(num_parts))),
        Value::Int(static_cast<int64_t>(1 + rng.NextBounded(num_suppliers))),
        Value::Int(linenumber),
        Value::Int(static_cast<int64_t>(1 + rng.NextBounded(50)) * 100),
        Value::Int(RandomCents(90000, 10500000, &rng)),
        Value::Int(static_cast<int64_t>(rng.NextBounded(11))),   // 0.00-0.10
        Value::Int(static_cast<int64_t>(rng.NextBounded(9))),    // 0.00-0.08
        Value::Str(Pick(ReturnFlags(), &rng)),
        Value::Str(Pick(LineStatuses(), &rng)),
        Value::Int(shipdate),
        Value::Int(shipdate + static_cast<int64_t>(rng.NextBounded(60))),
        Value::Int(shipdate + 1 + static_cast<int64_t>(rng.NextBounded(30))),
        Value::Str(Pick(ShipInstructs(), &rng)),
        Value::Str(Pick(ShipModes(), &rng)),
        Value::Str(Comment(44, &rng)),
    };
    CFEST_RETURN_NOT_OK(builder.Append(row));
    ++linenumber;
  }
  return builder.Finish();
}

Result<std::unique_ptr<Table>> GenerateOrders(const TpchOptions& options) {
  const uint64_t n = OrdersRows(options.scale_factor);
  const uint64_t num_customers = CustomerRows(options.scale_factor);
  const uint64_t clerk_count =
      std::max<uint64_t>(1, Scaled(options.scale_factor, 1000));
  Random rng(options.seed ^ 0x22222222u);
  TableBuilder builder(OrdersSchema());
  builder.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Row row = {
        Value::Int(static_cast<int64_t>(i + 1)),
        Value::Int(static_cast<int64_t>(1 + rng.NextBounded(num_customers))),
        Value::Str(Pick(OrderStatuses(), &rng)),
        Value::Int(RandomCents(100000, 50000000, &rng)),
        Value::Int(RandomDate(&rng)),
        Value::Str(Pick(OrderPriorities(), &rng)),
        Value::Str(Clerk(clerk_count, &rng)),
        Value::Int(0),
        Value::Str(Comment(79, &rng)),
    };
    CFEST_RETURN_NOT_OK(builder.Append(row));
  }
  return builder.Finish();
}

Result<std::unique_ptr<Table>> GeneratePart(const TpchOptions& options) {
  const uint64_t n = PartRows(options.scale_factor);
  Random rng(options.seed ^ 0x33333333u);
  TableBuilder builder(PartSchema());
  builder.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Row row = {
        Value::Int(static_cast<int64_t>(i + 1)),
        Value::Str(PartName(&rng)),
        Value::Str(Name("Manufacturer", 1 + rng.NextBounded(5), 1)),
        Value::Str(Brand(&rng)),
        Value::Str(Pick(PartTypes(), &rng)),
        Value::Int(static_cast<int64_t>(1 + rng.NextBounded(50))),
        Value::Str(Pick(PartContainers(), &rng)),
        Value::Int(RandomCents(90000, 200000, &rng)),
        Value::Str(Comment(23, &rng)),
    };
    CFEST_RETURN_NOT_OK(builder.Append(row));
  }
  return builder.Finish();
}

Result<std::unique_ptr<Table>> GenerateCustomer(const TpchOptions& options) {
  const uint64_t n = CustomerRows(options.scale_factor);
  Random rng(options.seed ^ 0x44444444u);
  TableBuilder builder(CustomerSchema());
  builder.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t nation = static_cast<uint32_t>(rng.NextBounded(25));
    Row row = {
        Value::Int(static_cast<int64_t>(i + 1)),
        Value::Str(Name("Customer", i + 1, 9)),
        Value::Str(Address(40, &rng)),
        Value::Int(nation),
        Value::Str(Phone(nation, &rng)),
        Value::Int(RandomCents(-99999, 999999, &rng)),
        Value::Str(Pick(MarketSegments(), &rng)),
        Value::Str(Comment(117, &rng)),
    };
    CFEST_RETURN_NOT_OK(builder.Append(row));
  }
  return builder.Finish();
}

Result<std::unique_ptr<Table>> GenerateSupplier(const TpchOptions& options) {
  const uint64_t n = SupplierRows(options.scale_factor);
  Random rng(options.seed ^ 0x55555555u);
  TableBuilder builder(SupplierSchema());
  builder.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t nation = static_cast<uint32_t>(rng.NextBounded(25));
    Row row = {
        Value::Int(static_cast<int64_t>(i + 1)),
        Value::Str(Name("Supplier", i + 1, 9)),
        Value::Str(Address(40, &rng)),
        Value::Int(nation),
        Value::Str(Phone(nation, &rng)),
        Value::Int(RandomCents(-99999, 999999, &rng)),
        Value::Str(Comment(101, &rng)),
    };
    CFEST_RETURN_NOT_OK(builder.Append(row));
  }
  return builder.Finish();
}

Schema NationSchema() {
  return MakeSchema({
      {"n_nationkey", Int32Type()},
      {"n_name", CharType(25)},
      {"n_regionkey", Int32Type()},
      {"n_comment", VarcharType(152)},
  });
}

Schema RegionSchema() {
  return MakeSchema({
      {"r_regionkey", Int32Type()},
      {"r_name", CharType(25)},
      {"r_comment", VarcharType(152)},
  });
}

Result<std::unique_ptr<Table>> GenerateNation(const TpchOptions& options) {
  Random rng(options.seed ^ 0x66666666u);
  TableBuilder builder(NationSchema());
  const auto& nations = Nations();
  for (size_t i = 0; i < nations.size(); ++i) {
    Row row = {
        Value::Int(static_cast<int64_t>(i)),
        Value::Str(nations[i]),
        Value::Int(static_cast<int64_t>(i % Regions().size())),
        Value::Str(Comment(152, &rng)),
    };
    CFEST_RETURN_NOT_OK(builder.Append(row));
  }
  return builder.Finish();
}

Result<std::unique_ptr<Table>> GenerateRegion(const TpchOptions& options) {
  Random rng(options.seed ^ 0x77777777u);
  TableBuilder builder(RegionSchema());
  const auto& regions = Regions();
  for (size_t i = 0; i < regions.size(); ++i) {
    Row row = {
        Value::Int(static_cast<int64_t>(i)),
        Value::Str(regions[i]),
        Value::Str(Comment(152, &rng)),
    };
    CFEST_RETURN_NOT_OK(builder.Append(row));
  }
  return builder.Finish();
}

Result<std::unique_ptr<Catalog>> GenerateCatalog(const TpchOptions& options) {
  auto catalog = std::make_unique<Catalog>();
  CFEST_ASSIGN_OR_RETURN(auto lineitem, GenerateLineitem(options));
  CFEST_RETURN_NOT_OK(catalog->AddTable("lineitem", std::move(lineitem)));
  CFEST_ASSIGN_OR_RETURN(auto orders, GenerateOrders(options));
  CFEST_RETURN_NOT_OK(catalog->AddTable("orders", std::move(orders)));
  CFEST_ASSIGN_OR_RETURN(auto part, GeneratePart(options));
  CFEST_RETURN_NOT_OK(catalog->AddTable("part", std::move(part)));
  CFEST_ASSIGN_OR_RETURN(auto customer, GenerateCustomer(options));
  CFEST_RETURN_NOT_OK(catalog->AddTable("customer", std::move(customer)));
  CFEST_ASSIGN_OR_RETURN(auto supplier, GenerateSupplier(options));
  CFEST_RETURN_NOT_OK(catalog->AddTable("supplier", std::move(supplier)));
  CFEST_ASSIGN_OR_RETURN(auto nation, GenerateNation(options));
  CFEST_RETURN_NOT_OK(catalog->AddTable("nation", std::move(nation)));
  CFEST_ASSIGN_OR_RETURN(auto region, GenerateRegion(options));
  CFEST_RETURN_NOT_OK(catalog->AddTable("region", std::move(region)));
  return catalog;
}

}  // namespace tpch
}  // namespace cfest
