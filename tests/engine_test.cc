// Tests for the EstimationEngine stack: TableView zero-copy sampling,
// the descriptor-level sample-index cache, batch-vs-single-shot estimate
// equality, thread-pool determinism, and the engine-backed consumers.

#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "advisor/what_if.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "datagen/table_gen.h"
#include "estimator/engine.h"
#include "estimator/hybrid.h"
#include "estimator/sample_cf.h"
#include "estimator/scheme_advisor.h"
#include "sampling/sampler.h"
#include "storage/table_view.h"

namespace cfest {
namespace {

std::unique_ptr<Table> WorkloadTable() {
  auto table = GenerateTable(
      {ColumnSpec::String("status", 12, 6, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(4, 10)),
       ColumnSpec::String("city", 24, 50, FrequencySpec::Zipf(1.0),
                          LengthSpec::Uniform(4, 20)),
       ColumnSpec::Integer("amount", 400)},
      20000, 7);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

std::vector<CandidateConfiguration> Candidates() {
  const std::vector<CompressionType> schemes = {
      CompressionType::kNullSuppression, CompressionType::kDictionaryPage,
      CompressionType::kRle, CompressionType::kPrefix};
  std::vector<CandidateConfiguration> candidates;
  for (const char* col : {"status", "city", "amount"}) {
    for (CompressionType type : schemes) {
      CandidateConfiguration c;
      c.table_name = "workload";
      c.index = {std::string("ix_") + col + "_" + CompressionTypeName(type),
                 {col},
                 /*clustered=*/false};
      c.scheme = CompressionScheme::Uniform(type);
      c.benefit = 1.0;
      candidates.push_back(std::move(c));
    }
  }
  // One uncompressed and one multi-column candidate for coverage.
  CandidateConfiguration none;
  none.table_name = "workload";
  none.index = {"ix_status_none", {"status"}, false};
  none.scheme = CompressionScheme::Uniform(CompressionType::kNone);
  candidates.push_back(std::move(none));
  CandidateConfiguration multi;
  multi.table_name = "workload";
  multi.index = {"ix_city_status", {"city", "status"}, false};
  multi.scheme = CompressionScheme::Uniform(CompressionType::kRle);
  multi.benefit = 2.0;
  candidates.push_back(std::move(multi));
  return candidates;
}

// ---------------------------------------------------------------------------
// TableView
// ---------------------------------------------------------------------------

TEST(TableViewTest, RoundTripsRowsByteIdenticallyVsMaterialize) {
  auto table = WorkloadTable();
  Random rng(11);
  auto sampler = MakeUniformWithReplacementSampler();
  auto ids = sampler->SampleIds(*table, 0.02, &rng);
  ASSERT_TRUE(ids.ok());

  auto materialized = MaterializeSample(*table, *ids);
  ASSERT_TRUE(materialized.ok());
  auto view = TableView::Make(*table, *ids);
  ASSERT_TRUE(view.ok());

  ASSERT_EQ((*view)->num_rows(), (*materialized)->num_rows());
  EXPECT_EQ((*view)->row_width(), (*materialized)->row_width());
  EXPECT_EQ((*view)->data_bytes(), (*materialized)->data_bytes());
  for (RowId i = 0; i < (*view)->num_rows(); ++i) {
    Slice a = (*view)->row(i);
    Slice b = (*materialized)->row(i);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size())) << "row " << i;
  }
}

TEST(TableViewTest, RejectsOutOfRangeIds) {
  auto table = WorkloadTable();
  auto view = TableView::Make(*table, {0, 1, table->num_rows()});
  EXPECT_FALSE(view.ok());
}

TEST(TableViewTest, SampleViewMatchesSampleIdsForSameSeed) {
  auto table = WorkloadTable();
  auto sampler = MakeUniformWithReplacementSampler();
  Random rng_ids(3), rng_view(3);
  auto ids = sampler->SampleIds(*table, 0.01, &rng_ids);
  auto view = sampler->SampleView(*table, 0.01, &rng_view);
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(*ids, (*view)->row_ids());
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(4u, pool.num_threads());
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&](uint64_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(1, t.load());
}

TEST(ThreadPoolTest, SubmitAndWaitDrainsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&] { ++count; });
  pool.Wait();
  EXPECT_EQ(100, count.load());
}

// ---------------------------------------------------------------------------
// EstimationEngine: batch equals single-shot SampleCF
// ---------------------------------------------------------------------------

TEST(EngineTest, BatchMatchesPerCandidateSampleCF) {
  auto table = WorkloadTable();
  auto candidates = Candidates();
  constexpr uint64_t kSeed = 42;

  SampleCFOptions options;
  options.fraction = 0.02;
  options.metric = SizeMetric::kPageBytes;

  EstimationEngineOptions engine_options;
  engine_options.base = options;
  engine_options.seed = kSeed;
  EstimationEngine engine(*table, engine_options);
  auto sized = engine.EstimateAll(candidates);
  ASSERT_TRUE(sized.ok());
  ASSERT_EQ(candidates.size(), sized->size());

  for (size_t i = 0; i < candidates.size(); ++i) {
    const bool uncompressed =
        candidates[i].scheme.default_type == CompressionType::kNone;
    if (uncompressed) {
      EXPECT_EQ(1.0, (*sized)[i].estimated_cf);
      EXPECT_EQ((*sized)[i].uncompressed_bytes, (*sized)[i].estimated_bytes);
      continue;
    }
    Random rng(kSeed);
    auto single = SampleCF(*table, candidates[i].index, candidates[i].scheme,
                           options, &rng);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single->cf.value, (*sized)[i].estimated_cf)
        << "candidate " << candidates[i].index.name;
  }
  EXPECT_EQ(1u, engine.cache_stats().samples_drawn);
}

TEST(EngineTest, EstimateCFMatchesSampleCFResultFields) {
  auto table = WorkloadTable();
  constexpr uint64_t kSeed = 9;
  IndexDescriptor desc{"ix", {"city"}, false};
  CompressionScheme scheme =
      CompressionScheme::Uniform(CompressionType::kDictionaryPage);

  EstimationEngineOptions engine_options;
  engine_options.base.fraction = 0.02;
  engine_options.seed = kSeed;
  EstimationEngine engine(*table, engine_options);
  auto batch = engine.EstimateCF(desc, scheme);
  ASSERT_TRUE(batch.ok());

  Random rng(kSeed);
  SampleCFOptions options;
  options.fraction = 0.02;
  auto single = SampleCF(*table, desc, scheme, options, &rng);
  ASSERT_TRUE(single.ok());

  EXPECT_EQ(single->cf.value, batch->cf.value);
  EXPECT_EQ(single->sample_rows, batch->sample_rows);
  EXPECT_EQ(single->sample_dictionary_entries,
            batch->sample_dictionary_entries);
  EXPECT_EQ(single->sample_compressed.page_bytes(),
            batch->sample_compressed.page_bytes());
}

// ---------------------------------------------------------------------------
// EstimationEngine: caching
// ---------------------------------------------------------------------------

TEST(EngineTest, IndexBuildCacheIsHitAcrossSchemes) {
  auto table = WorkloadTable();
  auto candidates = Candidates();  // 4 key sets, 14 candidates
  EstimationEngineOptions engine_options;
  engine_options.base.fraction = 0.02;
  EstimationEngine engine(*table, engine_options);
  auto sized = engine.EstimateAll(candidates);
  ASSERT_TRUE(sized.ok());

  const EstimationEngine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(1u, stats.samples_drawn);
  // 13 compressed candidates over 4 distinct key sets (the kNone candidate
  // never touches the sample).
  EXPECT_EQ(4u, stats.index_builds);
  EXPECT_EQ(9u, stats.index_cache_hits);

  // A second batch over the same candidates is served entirely from cache.
  auto again = engine.EstimateAll(candidates);
  ASSERT_TRUE(again.ok());
  const EstimationEngine::CacheStats stats2 = engine.cache_stats();
  EXPECT_EQ(1u, stats2.samples_drawn);
  EXPECT_EQ(4u, stats2.index_builds);
  EXPECT_EQ(22u, stats2.index_cache_hits);
  for (size_t i = 0; i < sized->size(); ++i) {
    EXPECT_EQ((*sized)[i].estimated_cf, (*again)[i].estimated_cf);
  }
}

TEST(EngineTest, DescriptorNameDoesNotDefeatTheCache) {
  auto table = WorkloadTable();
  EstimationEngineOptions engine_options;
  engine_options.base.fraction = 0.02;
  EstimationEngine engine(*table, engine_options);
  ASSERT_TRUE(
      engine.SampleIndex(IndexDescriptor{"a", {"city"}, false}).ok());
  ASSERT_TRUE(
      engine.SampleIndex(IndexDescriptor{"b", {"city"}, false}).ok());
  EXPECT_EQ(1u, engine.cache_stats().index_builds);
  EXPECT_EQ(1u, engine.cache_stats().index_cache_hits);

  // Clustered vs non-clustered and different key order are distinct builds.
  ASSERT_TRUE(
      engine.SampleIndex(IndexDescriptor{"c", {"city"}, true}).ok());
  ASSERT_TRUE(
      engine.SampleIndex(IndexDescriptor{"d", {"status", "city"}, false})
          .ok());
  ASSERT_TRUE(
      engine.SampleIndex(IndexDescriptor{"e", {"city", "status"}, false})
          .ok());
  EXPECT_EQ(4u, engine.cache_stats().index_builds);
}

// ---------------------------------------------------------------------------
// EstimationEngine: thread-pool determinism
// ---------------------------------------------------------------------------

TEST(EngineTest, ParallelBatchIsDeterministicUnderFixedSeed) {
  auto table = WorkloadTable();
  auto candidates = Candidates();
  constexpr uint64_t kSeed = 123;

  auto run = [&](uint32_t threads) {
    EstimationEngineOptions engine_options;
    engine_options.base.fraction = 0.02;
    engine_options.seed = kSeed;
    engine_options.num_threads = threads;
    EstimationEngine engine(*table, engine_options);
    auto sized = engine.EstimateAll(candidates);
    EXPECT_TRUE(sized.ok());
    return std::move(sized).ValueOrDie();
  };

  const std::vector<SizedCandidate> serial = run(1);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::vector<SizedCandidate> parallel = run(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].estimated_cf, parallel[i].estimated_cf);
      EXPECT_EQ(serial[i].estimated_bytes, parallel[i].estimated_bytes);
      EXPECT_EQ(serial[i].uncompressed_bytes, parallel[i].uncompressed_bytes);
    }
  }
}

// ---------------------------------------------------------------------------
// Re-routed consumers
// ---------------------------------------------------------------------------

TEST(EngineTest, EstimateCandidateSizeStillMatchesEngine) {
  auto table = WorkloadTable();
  auto candidates = Candidates();
  constexpr uint64_t kSeed = 42;
  SampleCFOptions options;
  options.fraction = 0.02;

  EstimationEngineOptions engine_options;
  engine_options.base = options;
  engine_options.seed = kSeed;
  EstimationEngine engine(*table, engine_options);
  auto batch = engine.EstimateAll(candidates);
  ASSERT_TRUE(batch.ok());

  for (size_t i = 0; i < candidates.size(); ++i) {
    Random rng(kSeed);
    auto single = EstimateCandidateSize(*table, candidates[i], options, &rng);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single->estimated_cf, (*batch)[i].estimated_cf);
    EXPECT_EQ(single->estimated_bytes, (*batch)[i].estimated_bytes);
    EXPECT_EQ(single->uncompressed_bytes, (*batch)[i].uncompressed_bytes);
  }
}

TEST(EngineTest, AdviseConfigurationsSelectsUnderBound) {
  auto table = WorkloadTable();
  auto candidates = Candidates();
  EstimationEngineOptions engine_options;
  engine_options.base.fraction = 0.02;
  EstimationEngine engine(*table, engine_options);

  auto sized = engine.EstimateAll(candidates);
  ASSERT_TRUE(sized.ok());
  uint64_t total = 0;
  for (const SizedCandidate& s : *sized) total += s.estimated_bytes;

  auto rec = AdviseConfigurations(engine, candidates, total / 2);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->total_bytes, total / 2);
  EXPECT_FALSE(rec->selected.empty());
  // At most one configuration per index name.
  std::set<std::string> names;
  for (const SizedCandidate& s : rec->selected) {
    EXPECT_TRUE(names.insert(s.config.table_name + "." + s.config.index.name)
                    .second);
  }
}

TEST(EngineTest, EngineBackedRecommendSchemeMatchesSingleShot) {
  auto table = WorkloadTable();
  constexpr uint64_t kSeed = 5;
  IndexDescriptor desc{"ix", {"city", "status"}, true};
  SampleCFOptions options;
  options.fraction = 0.02;

  Random rng(kSeed);
  auto single = RecommendScheme(*table, desc, {}, options, &rng);
  ASSERT_TRUE(single.ok());

  EstimationEngineOptions engine_options;
  engine_options.base = options;
  engine_options.seed = kSeed;
  EstimationEngine engine(*table, engine_options);
  auto batch = RecommendScheme(engine, desc);
  ASSERT_TRUE(batch.ok());

  EXPECT_EQ(single->estimated_cf, batch->estimated_cf);
  EXPECT_EQ(single->sample_rows, batch->sample_rows);
  ASSERT_EQ(single->columns.size(), batch->columns.size());
  for (size_t c = 0; c < single->columns.size(); ++c) {
    EXPECT_EQ(single->columns[c].best, batch->columns[c].best);
    EXPECT_EQ(single->columns[c].estimated_cf, batch->columns[c].estimated_cf);
  }
  // All schemes were ranked off one sample index build.
  EXPECT_EQ(1u, engine.cache_stats().index_builds);
  EXPECT_GT(engine.cache_stats().index_cache_hits, 0u);
}

TEST(EngineTest, EngineBackedHybridMatchesSingleShot) {
  auto table = WorkloadTable();
  constexpr uint64_t kSeed = 17;
  IndexDescriptor desc{"ix", {"city"}, false};
  CompressionScheme scheme =
      CompressionScheme::Uniform(CompressionType::kDictionaryGlobal);

  HybridCFOptions options;
  options.base.fraction = 0.02;
  Random rng(kSeed);
  auto single = HybridDictionaryCF(*table, desc, scheme, options, &rng);
  ASSERT_TRUE(single.ok());

  EstimationEngineOptions engine_options;
  engine_options.base = options.base;
  engine_options.seed = kSeed;
  EstimationEngine engine(*table, engine_options);
  auto batch = HybridDictionaryCF(engine, desc, scheme);
  ASSERT_TRUE(batch.ok());

  EXPECT_EQ(single->estimate, batch->estimate);
  EXPECT_EQ(single->plain.cf.value, batch->plain.cf.value);
  EXPECT_EQ(single->column_dv_estimates, batch->column_dv_estimates);
}

}  // namespace
}  // namespace cfest
