// Cross-module randomized property tests. Each property is swept over many
// seeds (TEST_P); generators are deterministic, so failures reproduce.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "compression/compressed_index.h"
#include "datagen/table_gen.h"
#include "estimator/analytic_model.h"
#include "estimator/compression_fraction.h"
#include "index/comparator.h"
#include "index/index.h"
#include "sampling/sampler.h"
#include "storage/csv.h"

namespace cfest {
namespace {

/// A random schema of 1-4 columns with random types and widths.
Schema RandomSchema(Random* rng) {
  const size_t ncols = 1 + rng->NextBounded(4);
  std::vector<Column> columns;
  for (size_t c = 0; c < ncols; ++c) {
    const std::string name = "c" + std::to_string(c);
    switch (rng->NextBounded(5)) {
      case 0:
        columns.push_back({name, Int32Type()});
        break;
      case 1:
        columns.push_back({name, Int64Type()});
        break;
      case 2:
        columns.push_back({name, DateType()});
        break;
      default:
        columns.push_back(
            {name, CharType(4 + static_cast<uint32_t>(rng->NextBounded(40)))});
        break;
    }
  }
  return std::move(Schema::Make(std::move(columns))).ValueOrDie();
}

/// A random table over `schema` with random cardinalities and lengths.
std::unique_ptr<Table> RandomTable(const Schema& schema, uint64_t n,
                                   Random* rng) {
  TableBuilder builder(schema);
  builder.Reserve(n);
  // Per-column value pools to control duplication.
  std::vector<std::vector<Value>> pools(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const uint64_t d = 1 + rng->NextBounded(n);
    for (uint64_t v = 0; v < d; ++v) {
      if (schema.column(c).type.IsString()) {
        const uint32_t k = schema.column(c).type.length;
        const uint32_t len =
            static_cast<uint32_t>(rng->NextBounded(k + 1));
        std::string s;
        for (uint32_t i = 0; i < len; ++i) {
          s.push_back('a' + static_cast<char>(rng->NextBounded(26)));
        }
        pools[c].push_back(Value::Str(std::move(s)));
      } else {
        const uint32_t w = schema.column(c).type.FixedWidth();
        const int64_t lo = w < 8 ? -(1ll << (8 * w - 1)) : INT64_MIN / 2;
        const int64_t hi = w < 8 ? (1ll << (8 * w - 1)) - 1 : INT64_MAX / 2;
        pools[c].push_back(Value::Int(rng->NextInRange(lo, hi)));
      }
    }
  }
  Row row(schema.num_columns());
  for (uint64_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      row[c] = pools[c][rng->NextBounded(pools[c].size())];
    }
    EXPECT_TRUE(builder.Append(row).ok());
  }
  return builder.Finish();
}

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

// ---------------------------------------------------------------------------
// Property: compress(decode) is the identity for every scheme on random data
// ---------------------------------------------------------------------------

TEST_P(PropertyTest, CompressionRoundTripsOnRandomTables) {
  Random rng(GetParam());
  Schema schema = RandomSchema(&rng);
  auto table = RandomTable(schema, 200 + rng.NextBounded(400), &rng);
  std::vector<Slice> rows;
  for (RowId id = 0; id < table->num_rows(); ++id) {
    rows.push_back(table->row(id));
  }
  for (CompressionType type : AllCompressionTypes()) {
    // Build a scheme applying `type` where possible, kNone elsewhere.
    CompressionScheme scheme;
    scheme.per_column.assign(schema.num_columns(), CompressionType::kNone);
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (MakeColumnCompressor(type, schema.column(c).type).ok()) {
        scheme.per_column[c] = type;
      }
    }
    IndexBuildOptions options;
    options.page_size = 1024 + rng.NextBounded(8) * 1024;
    Result<CompressedIndex> compressed =
        CompressRows(schema, scheme, rows, options);
    ASSERT_TRUE(compressed.ok())
        << CompressionTypeName(type) << ": " << compressed.status();
    std::vector<std::string> decoded;
    ASSERT_TRUE(compressed->DecodeAllRows(&decoded).ok())
        << CompressionTypeName(type);
    ASSERT_EQ(decoded.size(), rows.size()) << CompressionTypeName(type);
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(Slice(decoded[i]), rows[i])
          << CompressionTypeName(type) << " row " << i;
    }
    // Page invariant: used bytes never exceed the page size.
    for (const Page& page : compressed->pages()) {
      ASSERT_LE(page.used_bytes(), options.page_size);
    }
  }
}

// ---------------------------------------------------------------------------
// Property: encoded-row comparison agrees with decoded Value comparison
// ---------------------------------------------------------------------------

TEST_P(PropertyTest, ComparatorAgreesWithDecodedOrder) {
  Random rng(GetParam() * 31 + 7);
  Schema schema = RandomSchema(&rng);
  auto table = RandomTable(schema, 120, &rng);
  RowComparator cmp(&schema, schema.num_columns());
  RowCodec codec(schema);
  for (int trial = 0; trial < 200; ++trial) {
    const RowId a = rng.NextBounded(table->num_rows());
    const RowId b = rng.NextBounded(table->num_rows());
    const int encoded_cmp = cmp.Compare(table->row(a), table->row(b));
    const Row ra = *table->DecodeRow(a);
    const Row rb = *table->DecodeRow(b);
    int decoded_cmp = 0;
    for (size_t c = 0; c < ra.size() && decoded_cmp == 0; ++c) {
      if (schema.column(c).type.IsString()) {
        // Encoded strings compare blank-padded; emulate on decoded values.
        std::string pa = ra[c].AsString();
        std::string pb = rb[c].AsString();
        pa.resize(schema.width(c), ' ');
        pb.resize(schema.width(c), ' ');
        decoded_cmp = pa.compare(pb);
      } else {
        decoded_cmp = ra[c].AsInt() < rb[c].AsInt()
                          ? -1
                          : (ra[c].AsInt() > rb[c].AsInt() ? 1 : 0);
      }
    }
    const auto sign = [](int v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); };
    ASSERT_EQ(sign(encoded_cmp), sign(decoded_cmp))
        << "rows " << a << " vs " << b;
  }
}

// ---------------------------------------------------------------------------
// Property: index build emits a sorted permutation of its input
// ---------------------------------------------------------------------------

TEST_P(PropertyTest, IndexBuildIsSortedPermutation) {
  Random rng(GetParam() * 97 + 13);
  Schema schema = RandomSchema(&rng);
  auto table = RandomTable(schema, 300, &rng);
  IndexDescriptor desc{"cx", {schema.column(0).name}, /*clustered=*/true};
  IndexBuildOptions options;
  options.keep_pages = false;
  auto index = Index::Build(*table, desc, options);
  ASSERT_TRUE(index.ok());
  // Sorted by the key comparator.
  RowComparator cmp(&index->schema(), 1);
  for (uint64_t i = 1; i < index->num_rows(); ++i) {
    ASSERT_LE(cmp.Compare(index->row(i - 1), index->row(i)), 0) << i;
  }
  // Permutation: multisets of serialized rows match. Index rows are the
  // table rows with columns permuted (key first), so compare per-column
  // multisets through the key column only (cheap and sufficient here).
  std::vector<std::string> table_keys, index_keys;
  const size_t key_col = 0;
  Result<size_t> table_col_result =
      table->schema().ColumnIndex(desc.key_columns[0]);
  ASSERT_TRUE(table_col_result.ok());
  const size_t table_col = *table_col_result;
  for (RowId id = 0; id < table->num_rows(); ++id) {
    table_keys.push_back(table->cell(id, table_col).ToString());
  }
  RowCodec codec(index->schema());
  for (uint64_t i = 0; i < index->num_rows(); ++i) {
    index_keys.push_back(
        codec.Cell(index->row(i), key_col).ToString());
  }
  std::sort(table_keys.begin(), table_keys.end());
  std::sort(index_keys.begin(), index_keys.end());
  ASSERT_EQ(table_keys, index_keys);
}

// ---------------------------------------------------------------------------
// Property: analytic NS closed form equals constructive bytes exactly
// ---------------------------------------------------------------------------

TEST_P(PropertyTest, NsClosedFormExactOnSinglePage) {
  Random rng(GetParam() * 131 + 3);
  const uint32_t k = 8 + static_cast<uint32_t>(rng.NextBounded(30));
  Schema schema =
      std::move(Schema::Make({{"a", CharType(k)}})).ValueOrDie();
  auto table = RandomTable(schema, 50 + rng.NextBounded(100), &rng);
  std::vector<Slice> rows;
  for (RowId id = 0; id < table->num_rows(); ++id) {
    rows.push_back(table->row(id));
  }
  IndexBuildOptions options;
  options.page_size = 65535;  // everything in one page -> one chunk
  auto compressed = CompressRows(
      schema, CompressionScheme::Uniform(CompressionType::kNullSuppression),
      rows, options);
  ASSERT_TRUE(compressed.ok());
  auto stats = AnalyzeColumn(*table, 0);
  ASSERT_TRUE(stats.ok());
  // chunk = u16 count + sum(l_i + 1 header byte).
  EXPECT_EQ(compressed->stats().chunk_bytes,
            2u + stats->sum_lengths + stats->n * 1u);
}

// ---------------------------------------------------------------------------
// Property: samplers produce valid ids at every fraction
// ---------------------------------------------------------------------------

TEST_P(PropertyTest, SamplersProduceValidSamples) {
  Random rng(GetParam() * 17 + 29);
  Schema schema =
      std::move(Schema::Make({{"v", Int64Type()}})).ValueOrDie();
  auto table = RandomTable(schema, 50 + rng.NextBounded(1000), &rng);
  std::vector<std::unique_ptr<RowSampler>> samplers;
  samplers.push_back(MakeUniformWithReplacementSampler());
  samplers.push_back(MakeUniformWithoutReplacementSampler());
  samplers.push_back(MakeBernoulliSampler());
  samplers.push_back(MakeReservoirSampler());
  samplers.push_back(MakeBlockSampler(1 + rng.NextBounded(64)));
  for (const auto& sampler : samplers) {
    const double f = 0.01 + rng.NextDouble() * 0.99;
    auto ids = sampler->SampleIds(*table, f, &rng);
    ASSERT_TRUE(ids.ok()) << sampler->name();
    ASSERT_FALSE(ids->empty()) << sampler->name();
    for (RowId id : *ids) ASSERT_LT(id, table->num_rows());
    if (sampler->name() == "uniform_wor" || sampler->name() == "reservoir") {
      std::vector<RowId> sorted = *ids;
      std::sort(sorted.begin(), sorted.end());
      ASSERT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end())
          << sampler->name() << " produced duplicates";
    }
  }
}

// ---------------------------------------------------------------------------
// Property: CSV round trip on random tables
// ---------------------------------------------------------------------------

TEST_P(PropertyTest, CsvRoundTripsRandomTables) {
  Random rng(GetParam() * 211 + 5);
  Schema schema = RandomSchema(&rng);
  auto table = RandomTable(schema, 80, &rng);
  const std::string csv = WriteCsv(*table);
  auto reloaded = LoadCsv(csv, schema);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_EQ((*reloaded)->num_rows(), table->num_rows());
  for (RowId id = 0; id < table->num_rows(); ++id) {
    // Compare decoded rows: CSV canonicalizes trailing blanks exactly like
    // the codec does, so decoded values must match.
    ASSERT_EQ(*(*reloaded)->DecodeRow(id), *table->DecodeRow(id)) << id;
  }
}

// ---------------------------------------------------------------------------
// Property: every scheme's CF is positive and page-based >= byte-based sizes
// ---------------------------------------------------------------------------

TEST_P(PropertyTest, SizeMetricsAreOrdered) {
  Random rng(GetParam() * 41 + 11);
  Schema schema = RandomSchema(&rng);
  auto table = RandomTable(schema, 400, &rng);
  IndexDescriptor desc{"cx", {schema.column(0).name}, true};
  for (CompressionType type :
       {CompressionType::kNullSuppression, CompressionType::kDictionaryPage,
        CompressionType::kPrefixDictionary}) {
    auto data_cf = ComputeTrueCF(*table, desc, CompressionScheme::Uniform(type),
                                 SizeMetric::kDataBytes);
    auto used_cf = ComputeTrueCF(*table, desc, CompressionScheme::Uniform(type),
                                 SizeMetric::kUsedBytes);
    auto page_cf = ComputeTrueCF(*table, desc, CompressionScheme::Uniform(type),
                                 SizeMetric::kPageBytes);
    ASSERT_TRUE(data_cf.ok());
    ASSERT_TRUE(used_cf.ok());
    ASSERT_TRUE(page_cf.ok());
    EXPECT_GT(data_cf->value, 0.0);
    // Page-granular absolute sizes dominate byte-granular ones.
    EXPECT_GE(page_cf->compressed_bytes, used_cf->compressed_bytes);
    EXPECT_GE(used_cf->compressed_bytes, data_cf->compressed_bytes);
    EXPECT_GE(page_cf->uncompressed_bytes, used_cf->uncompressed_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace cfest
