// Tests for the labeled-telemetry layer: metric families keyed by label
// sets (canonicalization, unlabeled-child equivalence, aggregate = sum of
// children), Prometheus text-exposition edge cases (escaping of quotes,
// backslashes, and newlines in label values; labeled _p50/_p99 and _bucket
// series), and the PR's end-to-end acceptance scenario — a two-table
// coalesced EstimateAll whose per-table children sum to the family
// aggregates and whose exported Chrome trace flow-links every merged wait
// span to its owner's compute span.

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "datagen/table_gen.h"
#include "estimator/service.h"
#include "storage/catalog.h"

namespace cfest {
namespace {

using metrics::LabelSet;
using metrics::MetricRegistry;
using metrics::MetricsSnapshot;

#ifndef CFEST_METRICS_DISABLED

TEST(LabeledMetricsTest, EmptyLabelSetIsTheUnlabeledChild) {
  metrics::Counter* plain =
      MetricRegistry::Global().GetCounter("cfest.test.empty_labels");
  metrics::Counter* empty =
      MetricRegistry::Global().GetCounter("cfest.test.empty_labels", {});
  EXPECT_EQ(plain, empty);
  plain->Add(2);
  const MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("cfest.test.empty_labels"), 2u);
  // No labeled children -> the family does not appear in labeled_counters.
  EXPECT_EQ(snapshot.labeled_counters.count("cfest.test.empty_labels"), 0u);
}

TEST(LabeledMetricsTest, LabelOrderIsCanonicalized) {
  metrics::Counter* ab = MetricRegistry::Global().GetCounter(
      "cfest.test.canonical", {{"a", "1"}, {"b", "2"}});
  metrics::Counter* ba = MetricRegistry::Global().GetCounter(
      "cfest.test.canonical", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);
  ab->Add(3);
  const MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  // The lookup helper accepts either order too.
  EXPECT_EQ(snapshot.LabeledCounterValue("cfest.test.canonical",
                                         {{"b", "2"}, {"a", "1"}}),
            3u);
  EXPECT_EQ(snapshot.LabeledCounterValue("cfest.test.canonical",
                                         {{"a", "1"}, {"b", "2"}}),
            3u);
}

TEST(LabeledMetricsTest, AggregateSumsLabeledAndUnlabeledChildren) {
  metrics::Counter* unlabeled =
      MetricRegistry::Global().GetCounter("cfest.test.agg");
  metrics::Counter* t1 =
      MetricRegistry::Global().GetCounter("cfest.test.agg", {{"table", "t1"}});
  metrics::Counter* t2 =
      MetricRegistry::Global().GetCounter("cfest.test.agg", {{"table", "t2"}});
  unlabeled->Add(1);
  t1->Add(10);
  t2->Add(100);
  const MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("cfest.test.agg"), 111u);
  const auto& children = snapshot.labeled_counters.at("cfest.test.agg");
  ASSERT_EQ(children.size(), 2u);
  uint64_t child_sum = 0;
  for (const auto& child : children) child_sum += child.value;
  EXPECT_EQ(child_sum, 110u);  // the unlabeled child is not re-listed
}

TEST(LabeledMetricsTest, RetiredLabeledInstancesStayInTheChild) {
  {
    metrics::Counter instance;
    auto registration = MetricRegistry::Global().RegisterCounters(
        {{"table", "retire_t"}}, {{"cfest.test.retire", &instance}});
    instance.Add(7);
  }  // registration dies; the child keeps the total
  const MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.LabeledCounterValue("cfest.test.retire",
                                         {{"table", "retire_t"}}),
            7u);
  EXPECT_EQ(snapshot.CounterValue("cfest.test.retire"), 7u);
}

TEST(PrometheusTextTest, EscapesQuotesBackslashesAndNewlines) {
  MetricRegistry::Global()
      .GetCounter("cfest.test.escape",
                  {{"table", "we\"ird\\path\nx"}})
      ->Add(4);
  const std::string text =
      MetricRegistry::Global().Snapshot().ToPrometheusText();
  // Exposition-format escapes in label values: \" for quote, \\ for
  // backslash, \n (two characters) for newline.
  EXPECT_NE(
      text.find("cfest_test_escape{table=\"we\\\"ird\\\\path\\nx\"} 4"),
      std::string::npos)
      << text;
  // The raw newline must not leak into the exposition (one sample = one
  // line).
  EXPECT_EQ(text.find("we\"ird"), std::string::npos);
}

TEST(PrometheusTextTest, HelpAndTypePrecedeEveryFamily) {
  MetricRegistry::Global().GetCounter("cfest.test.helped")->Add(1);
  const std::string text =
      MetricRegistry::Global().Snapshot().ToPrometheusText();
  const size_t help = text.find("# HELP cfest_test_helped ");
  const size_t type = text.find("# TYPE cfest_test_helped counter");
  const size_t sample = text.find("\ncfest_test_helped 1");
  ASSERT_NE(help, std::string::npos);
  ASSERT_NE(type, std::string::npos);
  ASSERT_NE(sample, std::string::npos);
  EXPECT_LT(help, type);
  EXPECT_LT(type, sample);
}

TEST(PrometheusTextTest, LabeledHistogramChildrenGetQuantileSeries) {
  metrics::Histogram* hist = MetricRegistry::Global().GetHistogram(
      "cfest.test.lat_ns", {{"table", "t_hist"}});
  for (uint64_t v : {100u, 200u, 400u, 800u, 1600u}) hist->Record(v);
  const std::string text =
      MetricRegistry::Global().Snapshot().ToPrometheusText();
  // The aggregate histogram exports label-less series; the labeled child
  // gets its own _bucket/_sum/_count plus _p50/_p99 gauges with the label
  // set (labels before the le bucket bound).
  EXPECT_NE(text.find("cfest_test_lat_ns_count{table=\"t_hist\"} 5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cfest_test_lat_ns_sum{table=\"t_hist\"} 3100"),
            std::string::npos);
  EXPECT_NE(text.find("cfest_test_lat_ns_bucket{table=\"t_hist\",le="),
            std::string::npos);
  EXPECT_NE(text.find("cfest_test_lat_ns_bucket{table=\"t_hist\",le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("cfest_test_lat_ns_p50{table=\"t_hist\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cfest_test_lat_ns_p99{table=\"t_hist\"}"),
            std::string::npos);
  // Aggregate quantile series stay label-less.
  EXPECT_NE(text.find("\ncfest_test_lat_ns_p50 "), std::string::npos);
  EXPECT_NE(text.find("\ncfest_test_lat_ns_p99 "), std::string::npos);
}

TEST(JsonSnapshotTest, LabeledFamiliesExportLabelsAndValues) {
  MetricRegistry::Global()
      .GetCounter("cfest.test.json_labels", {{"table", "jt"}})
      ->Add(9);
  MetricRegistry::Global()
      .GetHistogram("cfest.test.json_lat_ns", {{"table", "jt"}})
      ->Record(1000);
  const std::string json = MetricRegistry::Global().Snapshot().ToJson();
  EXPECT_NE(json.find("\"labeled_counters\""), std::string::npos);
  EXPECT_NE(json.find("\"labeled_gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"labeled_histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"cfest.test.json_labels\""), std::string::npos);
  EXPECT_NE(json.find("\"jt\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end acceptance: a two-table coalesced EstimateAll run.

std::unique_ptr<Catalog> TwoTableCatalog() {
  auto catalog = std::make_unique<Catalog>();
  auto orders = GenerateTable(
      {ColumnSpec::String("status", 12, 6, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(4, 10)),
       ColumnSpec::Integer("amount", 400)},
      8000, 7);
  auto lineitem = GenerateTable(
      {ColumnSpec::String("shipmode", 8, 7, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(3, 8)),
       ColumnSpec::Integer("quantity", 50)},
      9000, 11);
  EXPECT_TRUE(orders.ok());
  EXPECT_TRUE(lineitem.ok());
  EXPECT_TRUE(
      catalog->AddTable("orders", std::move(orders).ValueOrDie()).ok());
  EXPECT_TRUE(
      catalog->AddTable("lineitem", std::move(lineitem).ValueOrDie()).ok());
  return catalog;
}

CandidateConfiguration Candidate(const std::string& table,
                                 const std::string& col,
                                 CompressionType type) {
  CandidateConfiguration c;
  c.table_name = table;
  c.index = {"ix_" + table + "_" + col, {col}, /*clustered=*/false};
  c.scheme = CompressionScheme::Uniform(type);
  c.benefit = 1.0;
  return c;
}

/// Splits the `traceEvents` array of an exported Chrome trace into one
/// string per event object (balanced-brace scan; event objects nest at
/// most one level, for "args").
std::vector<std::string> TraceEvents(const std::string& json) {
  std::vector<std::string> events;
  const size_t open = json.find('[');
  EXPECT_NE(open, std::string::npos);
  size_t depth = 0;
  size_t start = 0;
  for (size_t i = open; i < json.size(); ++i) {
    if (json[i] == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (json[i] == '}') {
      --depth;
      if (depth == 0) events.push_back(json.substr(start, i - start + 1));
    } else if (json[i] == ']' && depth == 0) {
      break;
    }
  }
  return events;
}

uint64_t EventId(const std::string& event) {
  const size_t pos = event.find("\"id\":");
  EXPECT_NE(pos, std::string::npos) << event;
  return std::strtoull(event.c_str() + pos + 5, nullptr, 10);
}

TEST(LabeledTelemetryEndToEndTest, TwoTableEstimateAllChildrenAndFlows) {
  const MetricsSnapshot before = MetricRegistry::Global().Snapshot();
  trace::Reset();
  trace::SetEnabled(true);

  auto catalog = TwoTableCatalog();
  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.05;
  options.num_threads = 4;
  options.coalesce_requests = true;
  CatalogEstimationService service(*catalog, options);

  // Each distinct candidate three times: one owner + two merged sharers
  // per (table, column, scheme) at the shared epoch.
  std::vector<CandidateConfiguration> candidates;
  for (int copy = 0; copy < 3; ++copy) {
    candidates.push_back(
        Candidate("orders", "status", CompressionType::kDictionaryPage));
    candidates.push_back(
        Candidate("lineitem", "shipmode", CompressionType::kRle));
    candidates.push_back(
        Candidate("orders", "amount", CompressionType::kNullSuppression));
  }
  auto sized = service.EstimateAll(candidates);
  ASSERT_TRUE(sized.ok());
  ASSERT_EQ(sized->size(), candidates.size());

  trace::SetEnabled(false);
  const MetricsSnapshot after = MetricRegistry::Global().Snapshot();

  // (a) Per-table children sum to the family aggregate: for each coalescer
  // counter, the run's aggregate delta must equal the sum of the two
  // tables' child deltas (this run touched no unlabeled child).
  const auto child_delta = [&](const std::string& name,
                               const std::string& table) {
    return after.LabeledCounterValue(name, {{"table", table}}) -
           before.LabeledCounterValue(name, {{"table", table}});
  };
  const auto aggregate_delta = [&](const std::string& name) {
    return after.CounterValue(name) - before.CounterValue(name);
  };
  for (const std::string name :
       {"cfest.coalescer.requests", "cfest.coalescer.admitted",
        "cfest.coalescer.merged"}) {
    EXPECT_EQ(aggregate_delta(name),
              child_delta(name, "orders") + child_delta(name, "lineitem"))
        << name;
  }
  EXPECT_EQ(aggregate_delta("cfest.coalescer.requests"), 9u);
  EXPECT_EQ(aggregate_delta("cfest.coalescer.admitted"), 3u);
  EXPECT_EQ(aggregate_delta("cfest.coalescer.merged"), 6u);
  EXPECT_EQ(child_delta("cfest.coalescer.requests", "orders"), 6u);
  EXPECT_EQ(child_delta("cfest.coalescer.requests", "lineitem"), 3u);
  // The engines registered per-table children too (one engine per table).
  EXPECT_EQ(aggregate_delta("cfest.engine.samples_drawn"),
            child_delta("cfest.engine.samples_drawn", "orders") +
                child_delta("cfest.engine.samples_drawn", "lineitem"));
  EXPECT_EQ(child_delta("cfest.engine.samples_drawn", "orders"), 1u);
  // And the compat struct still matches the registry aggregates bit for
  // bit (the parity gate this PR must not break).
  const CatalogEstimationService::Stats stats = service.stats();
  EXPECT_EQ(stats.coalesce_requests, 9u);
  EXPECT_EQ(stats.coalesce_merged, 6u);

  // (b) Every merged wait span is flow-linked to its owner compute span in
  // the exported Chrome trace: each sink (`ph:"f"`) id has a matching
  // source (`ph:"s"`) id, and there are exactly as many sinks as merged
  // requests.
  const std::string json = trace::ExportChromeTraceJson();
  std::set<uint64_t> source_ids;
  std::vector<uint64_t> sink_ids;
  size_t wait_spans = 0;
  size_t compute_spans = 0;
  for (const std::string& event : TraceEvents(json)) {
    if (event.find("\"ph\":\"s\"") != std::string::npos) {
      source_ids.insert(EventId(event));
    } else if (event.find("\"ph\":\"f\"") != std::string::npos) {
      sink_ids.push_back(EventId(event));
      EXPECT_NE(event.find("\"bp\":\"e\""), std::string::npos) << event;
    } else if (event.find("\"name\":\"coalescer.wait\"") !=
               std::string::npos) {
      ++wait_spans;
    } else if (event.find("\"name\":\"coalescer.compute\"") !=
               std::string::npos) {
      ++compute_spans;
    }
  }
  EXPECT_EQ(compute_spans, 3u);
  EXPECT_EQ(wait_spans, 6u);
  ASSERT_EQ(sink_ids.size(), 6u);
  EXPECT_EQ(source_ids.size(), 3u);
  for (uint64_t id : sink_ids) {
    EXPECT_TRUE(source_ids.count(id)) << "sink flow id " << id
                                      << " has no source";
  }
}

#endif  // CFEST_METRICS_DISABLED

}  // namespace
}  // namespace cfest
