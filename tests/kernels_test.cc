// Tests for the hardware-fast sizing kernels (compression/kernels.h): every
// SIMD variant pinned bit-identical to its scalar reference across fuzzed
// widths, alignments, odd tails, and empty/single-cell slices; the arena
// allocator; the bulk BitWriter; the batched chunk path against the per-cell
// path; and the incremental (Fenwick) advisor bound against the legacy
// rescan.

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "advisor/search.h"
#include "common/arena.h"
#include "common/bit_util.h"
#include "common/random.h"
#include "common/simd.h"
#include "compression/compressed_index.h"
#include "compression/compressor.h"
#include "compression/kernels.h"
#include "compression/scheme.h"
#include "storage/row_codec.h"

namespace cfest {
namespace {

/// Every level worth pinning on this machine (always includes kScalar).
std::vector<SimdLevel> TestableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (MaxSimdLevel() >= SimdLevel::kSse42) levels.push_back(SimdLevel::kSse42);
  if (MaxSimdLevel() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

/// Restores the default dispatch policy when a test scope ends.
struct SimdLevelGuard {
  ~SimdLevelGuard() { ResetSimdLevel(); }
};

/// Cell data with many pad bytes and runs, offset from the allocation start
/// so vector loads see every alignment.
std::string FuzzCells(Random* rng, uint32_t width, size_t n, bool is_string,
                      size_t misalign) {
  std::string buf(misalign + n * width, '\0');
  for (size_t i = 0; i < n; ++i) {
    char* cell = buf.data() + misalign + i * width;
    const uint64_t shape = rng->NextBounded(10);
    if (shape < 3) {
      // Fully padded cell (length 0).
      std::memset(cell, is_string ? ' ' : '\0', width);
    } else if (shape < 5 && i > 0) {
      // Repeat the previous cell: RLE runs.
      std::memcpy(cell, cell - width, width);
    } else {
      const uint32_t len = static_cast<uint32_t>(rng->NextBounded(width + 1));
      for (uint32_t b = 0; b < len; ++b) {
        cell[b] = static_cast<char>(rng->NextBounded(256));
      }
      if (len > 0 && is_string) {
        // Make the last byte non-pad half the time so lengths vary.
        if (rng->NextBounded(2) == 0) cell[len - 1] = 'x';
      }
      for (uint32_t b = len; b < width; ++b) cell[b] = is_string ? ' ' : '\0';
    }
  }
  return buf;
}

TEST(SimdLevelTest, ProbeAndPin) {
  SimdLevelGuard guard;
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse42), "sse42");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  SetSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  // A pin above the CPU's capability clamps instead of lying.
  SetSimdLevel(SimdLevel::kAvx2);
  EXPECT_LE(ActiveSimdLevel(), MaxSimdLevel());
  ResetSimdLevel();
  EXPECT_LE(ActiveSimdLevel(), MaxSimdLevel());
}

TEST(KernelsTest, NullSuppressedLengthsMatchScalarAndRowCodec) {
  SimdLevelGuard guard;
  Random rng(42);
  const uint32_t widths[] = {1, 2, 3, 4, 7, 8, 9, 16, 20, 33, 64, 65, 300};
  const size_t counts[] = {0, 1, 2, 3, 15, 16, 17, 63, 64, 65, 513};
  for (const bool is_string : {false, true}) {
    for (const uint32_t w : widths) {
      const DataType cell_type = is_string ? CharType(w) : Int64Type();
      for (const size_t n : counts) {
        for (const size_t misalign : {size_t{0}, size_t{1}, size_t{7}}) {
          const std::string buf = FuzzCells(&rng, w, n, is_string, misalign);
          const char* cells = buf.data() + misalign;
          std::vector<uint32_t> expect(n + 1, 0xDEAD);
          kernels::scalar::NullSuppressedLengths(cells, w, n, is_string,
                                                 expect.data());
          // The scalar reference must agree with the row codec's
          // definition of l_i.
          uint64_t expect_total = 0;
          for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(expect[i],
                      NullSuppressedLength(Slice(cells + i * w, w), cell_type));
            expect_total += expect[i];
          }
          for (const SimdLevel level : TestableLevels()) {
            SetSimdLevel(level);
            std::vector<uint32_t> got(n + 1, 0xBEEF);
            kernels::NullSuppressedLengths(cells, w, n, is_string, got.data());
            for (size_t i = 0; i < n; ++i) {
              ASSERT_EQ(got[i], expect[i])
                  << "level=" << SimdLevelName(level) << " w=" << w
                  << " n=" << n << " mis=" << misalign << " i=" << i;
            }
            ASSERT_EQ(kernels::TotalNullSuppressedLength(cells, w, n,
                                                         is_string),
                      expect_total)
                << "level=" << SimdLevelName(level) << " w=" << w
                << " n=" << n;
          }
        }
      }
    }
  }
}

TEST(KernelsTest, RunStartsMatchScalar) {
  SimdLevelGuard guard;
  Random rng(43);
  const uint32_t widths[] = {1, 2, 4, 8, 10, 16, 20, 64, 65, 130};
  const size_t counts[] = {0, 1, 2, 3, 31, 32, 33, 500};
  for (const uint32_t w : widths) {
    for (const size_t n : counts) {
      for (const size_t misalign : {size_t{0}, size_t{3}}) {
        const std::string buf = FuzzCells(&rng, w, n, false, misalign);
        const char* cells = buf.data() + misalign;
        // prev = null, a matching cell, a differing cell.
        std::string match(n > 0 ? std::string(cells, w) : std::string(w, 'q'));
        std::string differ(w, '\x7f');
        const char* prevs[] = {nullptr, match.data(), differ.data()};
        for (const char* prev : prevs) {
          std::vector<uint32_t> expect;
          kernels::scalar::RunStarts(cells, w, n, prev, &expect);
          ASSERT_EQ(kernels::scalar::CountRuns(cells, w, n, prev),
                    expect.size());
          for (const SimdLevel level : TestableLevels()) {
            SetSimdLevel(level);
            std::vector<uint32_t> got;
            kernels::RunStarts(cells, w, n, prev, &got);
            ASSERT_EQ(got, expect)
                << "level=" << SimdLevelName(level) << " w=" << w
                << " n=" << n << " mis=" << misalign;
            ASSERT_EQ(kernels::CountRuns(cells, w, n, prev), expect.size());
          }
        }
      }
    }
  }
}

TEST(KernelsTest, DecodeIntsSignExtendsLikeFrameOfReference) {
  SimdLevelGuard guard;
  Random rng(44);
  for (uint32_t w = 1; w <= 8; ++w) {
    const size_t n = 257;
    std::string buf(n * w, '\0');
    for (size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<char>(rng.NextBounded(256));
    }
    std::vector<int64_t> expect(n);
    kernels::scalar::DecodeInts(buf.data(), w, n, expect.data());
    for (size_t i = 0; i < n; ++i) {
      // Independent little-endian + sign-extension reference.
      uint64_t v = 0;
      for (uint32_t b = 0; b < w; ++b) {
        v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i * w + b]))
             << (8 * b);
      }
      if (w < 8) {
        const uint64_t sign = uint64_t{1} << (8 * w - 1);
        if (v & sign) v |= ~((sign << 1) - 1);
      }
      ASSERT_EQ(expect[i], static_cast<int64_t>(v));
    }
    for (const SimdLevel level : TestableLevels()) {
      SetSimdLevel(level);
      std::vector<int64_t> got(n);
      kernels::DecodeInts(buf.data(), w, n, got.data());
      ASSERT_EQ(got, expect) << "w=" << w;
    }
  }
}

TEST(KernelsTest, MinMaxIntsMatchesStdMinmax) {
  SimdLevelGuard guard;
  Random rng(45);
  for (const size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                         size_t{5}, size_t{7}, size_t{8}, size_t{9},
                         size_t{1000}}) {
    std::vector<int64_t> values(n);
    for (int64_t& v : values) {
      v = static_cast<int64_t>(rng.NextU64());  // full range incl. negatives
    }
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    for (const SimdLevel level : TestableLevels()) {
      SetSimdLevel(level);
      const kernels::MinMax mm = kernels::MinMaxInts(values.data(), n);
      ASSERT_EQ(mm.min, *lo) << "n=" << n;
      ASSERT_EQ(mm.max, *hi) << "n=" << n;
    }
  }
}

TEST(KernelsTest, HashBytesIsDeterministicPerLevel) {
  SimdLevelGuard guard;
  Random rng(46);
  std::string data(300, '\0');
  for (char& c : data) c = static_cast<char>(rng.NextBounded(256));
  for (const SimdLevel level : TestableLevels()) {
    SetSimdLevel(level);
    for (const size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                             size_t{9}, size_t{300}}) {
      ASSERT_EQ(kernels::HashBytes(data.data(), len),
                kernels::HashBytes(data.data(), len));
    }
    // Single-byte flip changes the hash (any decent hash must).
    std::string other = data;
    other[5] ^= 1;
    EXPECT_NE(kernels::HashBytes(data.data(), data.size()),
              kernels::HashBytes(other.data(), other.size()));
  }
}

TEST(KernelsTest, GatherMatchesNaive) {
  Random rng(47);
  for (const uint32_t w : {1u, 4u, 8u, 16u, 24u, 13u, 32u, 40u}) {
    const size_t n = 200;
    std::string rows(n * w, '\0');
    for (char& c : rows) c = static_cast<char>(rng.NextBounded(256));
    std::vector<uint64_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = n - 1 - i;
    std::string got(n * w, '\0');
    kernels::GatherRows(rows.data(), w, perm.data(), n, got.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(0, std::memcmp(got.data() + i * w,
                               rows.data() + perm[i] * w, w));
    }
    // The scalar reference is bit-identical to the dispatched entry point.
    std::string ref(n * w, '\0');
    kernels::scalar::GatherRows(rows.data(), w, perm.data(), n, ref.data());
    ASSERT_EQ(ref, got);
    // Strided gather of "column" bytes out of wider rows.
    const size_t stride = w + 3;
    std::string wide(n * stride, '\0');
    for (char& c : wide) c = static_cast<char>(rng.NextBounded(256));
    std::string cells(n * w, '\0');
    kernels::GatherStrided(wide.data(), stride, w, n, cells.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(0, std::memcmp(cells.data() + i * w,
                               wide.data() + i * stride, w));
    }
    std::string cells_ref(n * w, '\0');
    kernels::scalar::GatherStrided(wide.data(), stride, w, n,
                                   cells_ref.data());
    ASSERT_EQ(cells_ref, cells);
  }
}

TEST(ArenaTest, BumpAlignResetReuse) {
  Arena arena(64);
  char* a = arena.Allocate(10, 16);
  char* b = arena.Allocate(1, 1);
  char* c = arena.Allocate(100, 16);  // forces a new, larger block
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 16, 0u);
  EXPECT_NE(a, b);
  std::memset(c, 0x5A, 100);
  EXPECT_EQ(arena.bytes_allocated(), 111u);
  const size_t reserved = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Steady state: a reset arena recycles its blocks, no new reservations.
  for (int round = 0; round < 8; ++round) {
    arena.Allocate(10, 16);
    arena.Allocate(100, 16);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
    arena.Reset();
  }
  int64_t* ints = arena.AllocateArray<int64_t>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(ints) % alignof(int64_t), 0u);
}

TEST(BitWriterTest, BulkPutMatchesBitReaderRoundTrip) {
  Random rng(48);
  for (int trial = 0; trial < 20; ++trial) {
    std::string packed;
    BitWriter writer(&packed);
    std::vector<std::pair<uint64_t, int>> fields;
    for (int k = 0; k < 100; ++k) {
      const int width = static_cast<int>(rng.NextBounded(65));
      uint64_t value = rng.NextU64();
      if (width < 64) value &= (uint64_t{1} << width) - 1;
      fields.emplace_back(value, width);
      writer.Put(value, width);
    }
    size_t total_bits = 0;
    for (const auto& [value, width] : fields) total_bits += width;
    EXPECT_EQ(packed.size(), BytesForBits(total_bits));
    BitReader reader{Slice(packed)};
    for (const auto& [value, width] : fields) {
      uint64_t got = 0;
      ASSERT_TRUE(reader.Get(width, &got));
      ASSERT_EQ(got, value) << "width=" << width;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched chunk path == per-cell path, per scheme and per SIMD level.
// ---------------------------------------------------------------------------

std::unique_ptr<ColumnCompressor> MustMake(CompressionType type,
                                           const DataType& dt) {
  auto result = MakeColumnCompressor(type, dt);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).ValueOrDie();
}

void CheckBatchEqualsPerCell(CompressionType type, const DataType& dt,
                             const std::string& cells, size_t n) {
  const uint32_t w = dt.FixedWidth();
  auto per_cell_comp = MustMake(type, dt);
  auto batch_comp = MustMake(type, dt);
  auto per_cell = per_cell_comp->NewChunk();
  auto batch = batch_comp->NewChunk();
  ASSERT_TRUE(batch->SupportsBatch());
  Random rng(49);
  size_t i = 0;
  while (i < n) {
    const size_t take = std::min<size_t>(n - i, 1 + rng.NextBounded(37));
    // Both chunks hold the same cells here, so a single-cell batch sizing
    // must agree with the per-cell CostWith contract.
    const Slice first(cells.data() + i * w, w);
    ASSERT_EQ(batch->CostWithBatch(first.data(), 1), per_cell->CostWith(first))
        << "i=" << i;
    // The prospective batch cost must equal the realized cost after adding.
    const size_t prospective = batch->CostWithBatch(cells.data() + i * w, take);
    batch->AddBatch(cells.data() + i * w, take);
    ASSERT_EQ(batch->Cost(), prospective);
    for (size_t k = 0; k < take; ++k) {
      per_cell->Add(Slice(cells.data() + (i + k) * w, w));
    }
    i += take;
    ASSERT_EQ(batch->Cost(), per_cell->Cost()) << "i=" << i;
    ASSERT_EQ(batch->count(), per_cell->count());
  }
  ASSERT_EQ(batch->Finish(), per_cell->Finish());
  // Cross-page compressor state (the global dictionary) must match too.
  ASSERT_EQ(batch_comp->AuxiliaryBytes(), per_cell_comp->AuxiliaryBytes());
  ASSERT_EQ(batch_comp->TotalDictionaryEntries(),
            per_cell_comp->TotalDictionaryEntries());
}

TEST(BatchChunkTest, BatchedPathBitIdenticalAcrossLevels) {
  SimdLevelGuard guard;
  Random rng(50);
  struct Case {
    CompressionType type;
    DataType dt;
    bool is_string;
  };
  const Case cases[] = {
      {CompressionType::kNone, Int64Type(), false},
      {CompressionType::kNone, CharType(17), true},
      {CompressionType::kNullSuppression, Int64Type(), false},
      {CompressionType::kNullSuppression, CharType(20), true},
      {CompressionType::kNullSuppression, CharType(300), true},
      {CompressionType::kRle, Int32Type(), false},
      {CompressionType::kRle, CharType(16), true},
      {CompressionType::kDictionaryPage, CharType(12), true},
      {CompressionType::kDictionaryPage, Int64Type(), false},
      {CompressionType::kDictionaryGlobal, CharType(12), true},
      {CompressionType::kDictionaryGlobal, Int64Type(), false},
      {CompressionType::kFrameOfReference, Int32Type(), false},
      {CompressionType::kFrameOfReference, Int64Type(), false},
  };
  for (const Case& c : cases) {
    for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{700}}) {
      const std::string cells =
          FuzzCells(&rng, c.dt.FixedWidth(), n, c.is_string, 0);
      for (const SimdLevel level : TestableLevels()) {
        SetSimdLevel(level);
        CheckBatchEqualsPerCell(c.type, c.dt, cells, n);
      }
    }
  }
}

TEST(BatchChunkTest, AddRowsMatchesPerRowPages) {
  SimdLevelGuard guard;
  Random rng(51);
  Schema schema({{"k", Int64Type()},
                 {"v", CharType(12)},
                 {"m", Int32Type()}});
  CompressionScheme scheme;
  scheme.default_type = CompressionType::kNullSuppression;
  scheme.per_column = {CompressionType::kFrameOfReference,
                       CompressionType::kDictionaryPage,
                       CompressionType::kNullSuppression};
  const size_t n = 4000;
  std::string rows;
  rows.reserve(n * schema.row_width());
  for (size_t i = 0; i < n; ++i) {
    // Sorted-ish keys with runs in the middle column.
    const uint64_t k = i / 3;
    rows.append(reinterpret_cast<const char*>(&k), 8);
    std::string v = "v" + std::to_string(i / 50);
    v.append(12 - v.size(), ' ');
    rows += v;
    const uint32_t m = static_cast<uint32_t>(rng.NextBounded(1000));
    rows.append(reinterpret_cast<const char*>(&m), 4);
  }
  IndexBuildOptions options;
  options.page_size = 4096;
  auto build = [&](bool batched, SimdLevel level) {
    SetSimdLevel(level);
    auto builder = CompressedIndexBuilder::Make(schema, scheme, options)
                       .ValueOrDie();
    if (batched) {
      EXPECT_TRUE(builder->AddRows(rows.data(), n).ok());
    } else {
      for (size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(
            builder
                ->Add(Slice(rows.data() + i * schema.row_width(),
                            schema.row_width()))
                .ok());
      }
    }
    return builder->Finish().ValueOrDie();
  };
  const CompressedIndex reference = build(false, SimdLevel::kScalar);
  for (const SimdLevel level : TestableLevels()) {
    const CompressedIndex batched = build(true, level);
    ASSERT_EQ(batched.stats().data_pages, reference.stats().data_pages)
        << SimdLevelName(level);
    ASSERT_EQ(batched.stats().used_bytes, reference.stats().used_bytes);
    ASSERT_EQ(batched.stats().chunk_bytes, reference.stats().chunk_bytes);
    ASSERT_EQ(batched.pages().size(), reference.pages().size());
    for (size_t p = 0; p < batched.pages().size(); ++p) {
      ASSERT_EQ(batched.pages()[p].record(0).ValueOrDie(),
                reference.pages()[p].record(0).ValueOrDie())
          << "page " << p << " level " << SimdLevelName(level);
    }
    std::vector<std::string> decoded;
    ASSERT_TRUE(batched.DecodeAllRows(&decoded).ok());
    ASSERT_EQ(decoded.size(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(decoded[i],
                rows.substr(i * schema.row_width(), schema.row_width()));
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental (Fenwick) advisor bound == legacy rescan bound.
// ---------------------------------------------------------------------------

TEST(IncrementalBoundTest, SameSelectionsAsLegacyRescan) {
  Random rng(52);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 1 + rng.NextBounded(60);
    std::vector<SizedCandidate> candidates(n);
    for (size_t i = 0; i < n; ++i) {
      SizedCandidate& c = candidates[i];
      c.config.table_name = "t";
      // A handful of distinct index names so several candidates share a
      // selection key and exercise the taken bitmap.
      c.config.index.name = "idx" + std::to_string(rng.NextBounded(n / 2 + 1));
      c.config.scheme =
          CompressionScheme::Uniform(rng.NextBounded(2) == 0
                                         ? CompressionType::kNullSuppression
                                         : CompressionType::kRle);
      // Integer-valued benefits: exact in double, so prune-at-equality
      // decisions cannot be perturbed by summation order and both bound
      // implementations must branch identically.
      c.config.benefit = static_cast<double>(rng.NextBounded(1000));
      c.estimated_bytes = rng.NextBounded(100000);
      c.uncompressed_bytes = c.estimated_bytes * 2 + 1;
    }
    const std::vector<size_t> order = OrderCandidatesForSelection(candidates);
    for (const uint64_t bound :
         {uint64_t{0}, uint64_t{50000}, uint64_t{300000}, ~uint64_t{0}}) {
      LazyAdvisorStats fast_stats;
      LazyAdvisorStats slow_stats;
      const AdvisorRecommendation fast = SearchSizedCandidates(
          candidates, order, bound, &fast_stats, /*incremental_bound=*/true);
      const AdvisorRecommendation slow = SearchSizedCandidates(
          candidates, order, bound, &slow_stats, /*incremental_bound=*/false);
      ASSERT_EQ(fast.total_benefit, slow.total_benefit)
          << "trial=" << trial << " bound=" << bound;
      ASSERT_EQ(fast.total_bytes, slow.total_bytes);
      ASSERT_EQ(fast.selected.size(), slow.selected.size());
      for (size_t i = 0; i < fast.selected.size(); ++i) {
        ASSERT_EQ(fast.selected[i].config.index.name,
                  slow.selected[i].config.index.name);
        ASSERT_EQ(fast.selected[i].estimated_bytes,
                  slow.selected[i].estimated_bytes);
      }
      // Same tree: the bound values agree at every node, so both searches
      // visit and prune identically.
      ASSERT_EQ(fast_stats.nodes_visited, slow_stats.nodes_visited);
      ASSERT_EQ(fast_stats.nodes_pruned, slow_stats.nodes_pruned);
    }
  }
}

}  // namespace
}  // namespace cfest
