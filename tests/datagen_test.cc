// Tests for the data-generation substrate: distributions, string pools,
// declarative table generation, and the synthetic TPC-H tables.

#include <set>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distribution.h"
#include "datagen/string_gen.h"
#include "datagen/table_gen.h"
#include "datagen/tpch/tables.h"
#include "datagen/tpch/text.h"
#include "storage/row_codec.h"

namespace cfest {
namespace {

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

TEST(DistributionTest, RejectsBadParameters) {
  EXPECT_FALSE(MakeUniformDistribution(0).ok());
  EXPECT_FALSE(MakeZipfDistribution(0, 1.0).ok());
  EXPECT_FALSE(MakeZipfDistribution(10, 0.0).ok());
  EXPECT_FALSE(MakeSelfSimilarDistribution(10, 0.0).ok());
  EXPECT_FALSE(MakeSelfSimilarDistribution(10, 0.7).ok());
  EXPECT_FALSE(MakeSequentialDistribution(0).ok());
}

TEST(DistributionTest, UniformCoversDomainEvenly) {
  auto dist = MakeUniformDistribution(10);
  ASSERT_TRUE(dist.ok());
  Random rng(1);
  std::vector<uint64_t> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[(*dist)->Next(&rng)]++;
  for (uint64_t c : counts) {
    EXPECT_GT(c, 800u);
    EXPECT_LT(c, 1200u);
  }
}

TEST(DistributionTest, ZipfFrequenciesDecrease) {
  auto dist = MakeZipfDistribution(100, 1.0);
  ASSERT_TRUE(dist.ok());
  Random rng(2);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[(*dist)->Next(&rng)]++;
  // Head value dominates, tail is rare.
  EXPECT_GT(counts[0], counts[10] * 3);
  EXPECT_GT(counts[0], counts[99] * 20);
  // Zipf(1.0) over 100 values: P(0) ~ 1/H_100 ~ 0.193.
  EXPECT_NEAR(static_cast<double>(counts[0]) / 50000.0, 0.193, 0.02);
}

TEST(DistributionTest, SelfSimilarEightyTwenty) {
  auto dist = MakeSelfSimilarDistribution(100, 0.2);
  ASSERT_TRUE(dist.ok());
  Random rng(3);
  uint64_t head = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if ((*dist)->Next(&rng) < 20) ++head;
  }
  // ~80% of draws land in the first 20% of the domain.
  EXPECT_NEAR(static_cast<double>(head) / kDraws, 0.8, 0.03);
}

TEST(DistributionTest, SequentialIsExactRoundRobin) {
  auto dist = MakeSequentialDistribution(3);
  ASSERT_TRUE(dist.ok());
  Random rng(4);
  std::vector<uint64_t> seen;
  for (int i = 0; i < 7; ++i) seen.push_back((*dist)->Next(&rng));
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(DistributionTest, DomainsReported) {
  EXPECT_EQ((*MakeUniformDistribution(42))->domain(), 42u);
  EXPECT_EQ((*MakeZipfDistribution(7, 0.5))->domain(), 7u);
}

// ---------------------------------------------------------------------------
// String pools
// ---------------------------------------------------------------------------

TEST(StringPoolTest, AllDistinct) {
  Random rng(5);
  auto pool = StringPool::Make(500, 12, LengthSpec::Uniform(1, 12), &rng);
  ASSERT_TRUE(pool.ok());
  std::unordered_set<std::string> values;
  for (uint64_t i = 0; i < pool->size(); ++i) values.insert(pool->Get(i));
  EXPECT_EQ(values.size(), 500u);
}

TEST(StringPoolTest, ConstantLengthsExact) {
  Random rng(6);
  auto pool = StringPool::Make(100, 16, LengthSpec::Constant(9), &rng);
  ASSERT_TRUE(pool.ok());
  for (uint64_t i = 0; i < pool->size(); ++i) {
    EXPECT_EQ(pool->Get(i).size(), 9u);
  }
  EXPECT_DOUBLE_EQ(pool->MeanLength(), 9.0);
}

TEST(StringPoolTest, FullLengthUsesDeclaredWidth) {
  Random rng(7);
  auto pool = StringPool::Make(10, 8, LengthSpec::Full(), &rng);
  ASSERT_TRUE(pool.ok());
  for (uint64_t i = 0; i < pool->size(); ++i) {
    EXPECT_EQ(pool->Get(i).size(), 8u);
  }
}

TEST(StringPoolTest, BimodalLengths) {
  Random rng(8);
  auto pool = StringPool::Make(1000, 20, LengthSpec::Bimodal(2, 20), &rng);
  ASSERT_TRUE(pool.ok());
  uint64_t lo = 0, hi = 0;
  for (uint64_t i = 0; i < pool->size(); ++i) {
    const size_t len = pool->Get(i).size();
    EXPECT_TRUE(len == 2 || len == 20) << len;
    (len == 2 ? lo : hi)++;
  }
  EXPECT_GT(lo, 350u);
  EXPECT_GT(hi, 350u);
}

TEST(StringPoolTest, RejectsOverfullDomain) {
  Random rng(9);
  // char(2) can hold at most 36^2 = 1296 index-distinct strings.
  EXPECT_FALSE(StringPool::Make(2000, 2, LengthSpec::Full(), &rng).ok());
  EXPECT_TRUE(StringPool::Make(1296, 2, LengthSpec::Full(), &rng).ok());
  EXPECT_FALSE(StringPool::Make(0, 8, LengthSpec::Full(), &rng).ok());
}

// ---------------------------------------------------------------------------
// Table generation
// ---------------------------------------------------------------------------

TEST(TableGenTest, DistinctCountsHonored) {
  auto table = GenerateTable(
      {ColumnSpec::String("s", 10, 25),
       ColumnSpec::Integer("i", 7)},
      5000, 42);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), 5000u);
  std::unordered_set<std::string> s_values;
  std::unordered_set<std::string> i_values;
  for (RowId id = 0; id < (*table)->num_rows(); ++id) {
    s_values.insert((*table)->cell(id, 0).ToString());
    i_values.insert((*table)->cell(id, 1).ToString());
  }
  EXPECT_EQ(s_values.size(), 25u);  // all 25 appear at n=5000
  EXPECT_EQ(i_values.size(), 7u);
}

TEST(TableGenTest, UniqueColumnsUseRowIndex) {
  auto table = GenerateTable({ColumnSpec::Integer("id", 0)}, 100, 1);
  ASSERT_TRUE(table.ok());
  RowCodec codec((*table)->schema());
  for (RowId id = 0; id < 100; ++id) {
    EXPECT_EQ(codec.DecodeCell((*table)->row(id), 0)->AsInt(),
              static_cast<int64_t>(id));
  }
}

TEST(TableGenTest, DeterministicInSeed) {
  auto a = GenerateTable({ColumnSpec::String("s", 8, 10)}, 200, 77);
  auto b = GenerateTable({ColumnSpec::String("s", 8, 10)}, 200, 77);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (RowId id = 0; id < 200; ++id) {
    EXPECT_EQ((*a)->row(id), (*b)->row(id));
  }
  auto c = GenerateTable({ColumnSpec::String("s", 8, 10)}, 200, 78);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (RowId id = 0; id < 200; ++id) {
    if (!((*a)->row(id) == (*c)->row(id))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TableGenTest, RejectsBadSpecs) {
  EXPECT_FALSE(GenerateTable({}, 10, 1).ok());
  // Unique string too narrow for row indexes.
  EXPECT_FALSE(
      GenerateTable({ColumnSpec::String("s", 2, 0)}, 1000, 1).ok());
}

TEST(TableGenTest, ZipfSkewConcentratesValues) {
  auto table = GenerateTable(
      {ColumnSpec::String("s", 10, 50, FrequencySpec::Zipf(1.2))}, 10000, 5);
  ASSERT_TRUE(table.ok());
  std::map<std::string, uint64_t> counts;
  for (RowId id = 0; id < (*table)->num_rows(); ++id) {
    counts[(*table)->cell(id, 0).ToString()]++;
  }
  uint64_t max_count = 0;
  for (const auto& [v, c] : counts) max_count = std::max(max_count, c);
  // Under zipf(1.2) on 50 values the head holds >> 1/50 of the mass.
  EXPECT_GT(max_count, 10000u / 50u * 5u);
}

// ---------------------------------------------------------------------------
// TPC-H
// ---------------------------------------------------------------------------

TEST(TpchTest, RowCountsFollowScaleFactor) {
  EXPECT_EQ(tpch::LineitemRows(1.0), 6000000u);
  EXPECT_EQ(tpch::OrdersRows(1.0), 1500000u);
  EXPECT_EQ(tpch::PartRows(0.01), 2000u);
  EXPECT_EQ(tpch::CustomerRows(0.01), 1500u);
  EXPECT_EQ(tpch::SupplierRows(0.01), 100u);
  EXPECT_GE(tpch::LineitemRows(1e-9), 1u);  // clamped to at least one row
}

TEST(TpchTest, SchemasMatchSpecification) {
  EXPECT_EQ(tpch::LineitemSchema().num_columns(), 16u);
  EXPECT_EQ(tpch::OrdersSchema().num_columns(), 9u);
  EXPECT_EQ(tpch::PartSchema().num_columns(), 9u);
  EXPECT_EQ(tpch::CustomerSchema().num_columns(), 8u);
  EXPECT_EQ(tpch::SupplierSchema().num_columns(), 7u);
  EXPECT_EQ(*tpch::LineitemSchema().ColumnIndex("l_shipmode"), 14u);
  EXPECT_EQ(tpch::LineitemSchema().column(14).type, CharType(10));
  EXPECT_EQ(tpch::CustomerSchema().column(7).type, VarcharType(117));
}

class TpchDistinctProfileTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tpch::TpchOptions options;
    options.scale_factor = 0.002;
    auto result = tpch::GenerateCatalog(options);
    ASSERT_TRUE(result.ok()) << result.status();
    catalog_ = result->release();
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static uint64_t CountDistinct(const Table& table, const std::string& col) {
    const size_t idx = *table.schema().ColumnIndex(col);
    std::unordered_set<std::string> values;
    for (RowId id = 0; id < table.num_rows(); ++id) {
      values.insert(table.cell(id, idx).ToString());
    }
    return values.size();
  }

  static Catalog* catalog_;
};

Catalog* TpchDistinctProfileTest::catalog_ = nullptr;

TEST_F(TpchDistinctProfileTest, AllTablesPresentWithExpectedRows) {
  EXPECT_EQ(catalog_->TableNames().size(), 7u);
  EXPECT_EQ((*catalog_->GetTable("lineitem"))->num_rows(), 12000u);
  EXPECT_EQ((*catalog_->GetTable("orders"))->num_rows(), 3000u);
  EXPECT_EQ((*catalog_->GetTable("part"))->num_rows(), 400u);
  EXPECT_EQ((*catalog_->GetTable("customer"))->num_rows(), 300u);
  EXPECT_EQ((*catalog_->GetTable("supplier"))->num_rows(), 20u);
  // Reference tables are fixed-size at every scale factor.
  EXPECT_EQ((*catalog_->GetTable("nation"))->num_rows(), 25u);
  EXPECT_EQ((*catalog_->GetTable("region"))->num_rows(), 5u);
}

TEST_F(TpchDistinctProfileTest, NationRegionContents) {
  const Table& nation = **catalog_->GetTable("nation");
  EXPECT_EQ(nation.schema().num_columns(), 4u);
  EXPECT_EQ(CountDistinct(nation, "n_name"), 25u);
  RowCodec codec(nation.schema());
  const size_t regionkey = *nation.schema().ColumnIndex("n_regionkey");
  for (RowId id = 0; id < nation.num_rows(); ++id) {
    const int64_t rk = codec.DecodeCell(nation.row(id), regionkey)->AsInt();
    EXPECT_GE(rk, 0);
    EXPECT_LT(rk, 5);
  }
  const Table& region = **catalog_->GetTable("region");
  EXPECT_EQ(CountDistinct(region, "r_name"), 5u);
}

TEST_F(TpchDistinctProfileTest, LineitemCategoricalDomains) {
  const Table& li = **catalog_->GetTable("lineitem");
  EXPECT_LE(CountDistinct(li, "l_returnflag"), 3u);
  EXPECT_LE(CountDistinct(li, "l_linestatus"), 2u);
  EXPECT_EQ(CountDistinct(li, "l_shipmode"), 7u);
  EXPECT_EQ(CountDistinct(li, "l_shipinstruct"), 4u);
  // Comments are near-unique free text.
  EXPECT_GT(CountDistinct(li, "l_comment"), li.num_rows() / 2);
}

TEST_F(TpchDistinctProfileTest, OrdersProfiles) {
  const Table& orders = **catalog_->GetTable("orders");
  EXPECT_EQ(CountDistinct(orders, "o_orderkey"), orders.num_rows());
  EXPECT_EQ(CountDistinct(orders, "o_orderpriority"), 5u);
  EXPECT_LE(CountDistinct(orders, "o_orderstatus"), 3u);
  EXPECT_LE(CountDistinct(orders, "o_clerk"), 10u);  // sf*1000 clerks
}

TEST_F(TpchDistinctProfileTest, PartProfiles) {
  const Table& part = **catalog_->GetTable("part");
  EXPECT_LE(CountDistinct(part, "p_brand"), 25u);
  EXPECT_GE(CountDistinct(part, "p_brand"), 20u);
  EXPECT_LE(CountDistinct(part, "p_container"), 40u);
  EXPECT_LE(CountDistinct(part, "p_mfgr"), 5u);
}

TEST_F(TpchDistinctProfileTest, DatesWithinTpchRange) {
  const Table& li = **catalog_->GetTable("lineitem");
  RowCodec codec(li.schema());
  const size_t shipdate = *li.schema().ColumnIndex("l_shipdate");
  for (RowId id = 0; id < 100; ++id) {
    const int64_t days = codec.DecodeCell(li.row(id), shipdate)->AsInt();
    EXPECT_GE(days, 8035);          // 1992-01-01
    EXPECT_LT(days, 8035 + 2557 + 91);  // receipt slack included
  }
}

TEST(TpchTextTest, DomainsAndShapes) {
  EXPECT_EQ(tpch::ShipModes().size(), 7u);
  EXPECT_EQ(tpch::ShipInstructs().size(), 4u);
  EXPECT_EQ(tpch::OrderPriorities().size(), 5u);
  EXPECT_EQ(tpch::Nations().size(), 25u);
  EXPECT_EQ(tpch::PartContainers().size(), 40u);
  EXPECT_EQ(tpch::PartTypes().size(), 150u);
  Random rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::string comment = tpch::Comment(44, &rng);
    EXPECT_LE(comment.size(), 44u);
    EXPECT_FALSE(comment.empty());
    EXPECT_NE(comment.back(), ' ');
    const std::string brand = tpch::Brand(&rng);
    EXPECT_EQ(brand.size(), 8u);
    EXPECT_EQ(brand.substr(0, 6), "Brand#");
    const std::string phone = tpch::Phone(3, &rng);
    EXPECT_EQ(phone.size(), 15u);
    EXPECT_EQ(phone.substr(0, 2), "13");
  }
  EXPECT_EQ(tpch::Name("Customer", 42, 9), "Customer#000000042");
}

}  // namespace
}  // namespace cfest
