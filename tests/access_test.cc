// Tests for index read access (lookup/range scans with page-touch
// accounting) and the workload cost model built on top of it.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/cost_model.h"
#include "datagen/table_gen.h"
#include "index/index_scan.h"

namespace cfest {
namespace {

std::unique_ptr<Table> OrdersLike(uint64_t n) {
  auto table = GenerateTable(
      {ColumnSpec::Integer("k", 0),
       ColumnSpec::String("status", 8, 4, FrequencySpec::Uniform(),
                          LengthSpec::Constant(4))},
      n, 11);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

// ---------------------------------------------------------------------------
// IndexScanner
// ---------------------------------------------------------------------------

class IndexScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = OrdersLike(10000);
    auto index = Index::Build(*table_, {"ix", {"k"}, /*clustered=*/true});
    ASSERT_TRUE(index.ok());
    index_ = std::make_unique<Index>(std::move(*index));
    scanner_ = std::make_unique<IndexScanner>(index_.get());
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<Index> index_;
  std::unique_ptr<IndexScanner> scanner_;
};

TEST_F(IndexScanTest, PointLookupFindsExactlyOneRow) {
  auto result = scanner_->Lookup({Value::Int(4242)});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->row_count, 1u);
  auto row = scanner_->DecodeRow(result->first_position);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].AsInt(), 4242);
  EXPECT_EQ(result->leaf_pages_touched, 1u);
  EXPECT_GE(result->levels_descended, 2u);  // root + leaf at n = 10000
}

TEST_F(IndexScanTest, MissingKeyFindsNothing) {
  auto result = scanner_->Lookup({Value::Int(123456789)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 0u);
  EXPECT_EQ(result->leaf_pages_touched, 0u);
}

TEST_F(IndexScanTest, RangeScanCountsMatchPredicate) {
  ScanRange range;
  range.lower = Row{Value::Int(1000)};
  range.upper = Row{Value::Int(1999)};
  auto result = scanner_->Scan(range);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 1000u);  // keys 1000..1999 inclusive
  EXPECT_GT(result->leaf_pages_touched, 1u);
  // Rows in a range are contiguous and ordered.
  auto first = scanner_->DecodeRow(result->first_position);
  auto last =
      scanner_->DecodeRow(result->first_position + result->row_count - 1);
  EXPECT_EQ((*first)[0].AsInt(), 1000);
  EXPECT_EQ((*last)[0].AsInt(), 1999);
}

TEST_F(IndexScanTest, HalfOpenRanges) {
  ScanRange below;
  below.upper = Row{Value::Int(99)};
  auto r1 = scanner_->Scan(below);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->row_count, 100u);  // 0..99

  ScanRange above;
  above.lower = Row{Value::Int(9900)};
  auto r2 = scanner_->Scan(above);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->row_count, 100u);  // 9900..9999

  auto all = scanner_->Scan(ScanRange{});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->row_count, 10000u);
  EXPECT_EQ(all->leaf_pages_touched, index_->stats().leaf_pages);
}

TEST_F(IndexScanTest, EmptyAndInvertedRanges) {
  ScanRange inverted;
  inverted.lower = Row{Value::Int(5000)};
  inverted.upper = Row{Value::Int(4000)};
  auto result = scanner_->Scan(inverted);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 0u);
}

TEST_F(IndexScanTest, RejectsBadProbes) {
  EXPECT_FALSE(scanner_->Lookup({}).ok());
  EXPECT_FALSE(
      scanner_->Lookup({Value::Int(1), Value::Int(2)}).ok());  // 1 key col
  EXPECT_FALSE(scanner_->DecodeRow(10000).ok());
}

TEST(IndexScanDuplicatesTest, PrefixLookupSpansDuplicates) {
  auto table = GenerateTable(
      {ColumnSpec::String("flag", 4, 2, FrequencySpec::Sequential(),
                          LengthSpec::Constant(1)),
       ColumnSpec::Integer("v", 0)},
      1000, 3);
  ASSERT_TRUE(table.ok());
  auto index = Index::Build(**table, {"ix", {"flag", "v"}, false});
  ASSERT_TRUE(index.ok());
  IndexScanner scanner(&*index);
  // Prefix probe on the first key column only.
  auto result = scanner.Lookup({Value::Str("0")});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->row_count, 500u);
  // Full-key probe narrows to one row.
  auto narrow = scanner.Lookup({Value::Str("0"), Value::Int(42)});
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->row_count, 1u);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

PhysicalOption Heap(uint64_t rows, uint64_t bytes) {
  return {"t", "", bytes, rows, false};
}

TEST(CostModelTest, IndexBeatsHeapForSelectiveQueries) {
  CostModelParams params;
  const PhysicalOption heap = Heap(100000, 100 * 8192);
  PhysicalOption index{"t", "k", 100 * 8192, 100000, false};
  Query selective{"t", "k", 0.01, 1.0};
  EXPECT_LT(QueryCost(selective, index, params),
            QueryCost(selective, heap, params));
  // A full scan gains nothing from the matching order.
  Query full{"t", "k", 1.0, 1.0};
  EXPECT_DOUBLE_EQ(QueryCost(full, index, params),
                   QueryCost(full, heap, params));
}

TEST(CostModelTest, CompressionTradesIoForCpu) {
  CostModelParams params;
  params.page_read_cost = 1.0;
  params.row_cpu_cost = 0.001;
  params.decompress_factor = 3.0;
  PhysicalOption uncompressed{"t", "k", 1000 * 8192, 1000000, false};
  PhysicalOption compressed = uncompressed;
  compressed.total_bytes = 400 * 8192;  // CF = 0.4
  compressed.compressed = true;
  // I/O-bound full scan: compression wins (600 fewer page reads vs
  // 2ms/row * 2 extra CPU = 2000 -> actually compute both ways).
  Query full{"t", "k", 1.0, 1.0};
  const double cost_u = QueryCost(full, uncompressed, params);
  const double cost_c = QueryCost(full, compressed, params);
  // cost_u = 1000 + 1000; cost_c = 400 + 3000.
  EXPECT_DOUBLE_EQ(cost_u, 2000.0);
  EXPECT_DOUBLE_EQ(cost_c, 3400.0);
  // With cheaper CPU the compressed plan flips to a win.
  params.row_cpu_cost = 0.0001;
  EXPECT_LT(QueryCost(full, compressed, params),
            QueryCost(full, uncompressed, params));
}

TEST(CostModelTest, WorkloadRoutesEachQueryToCheapestOption) {
  CostModelParams params;
  std::vector<PhysicalOption> options = {
      Heap(10000, 100 * 8192),
      {"t", "a", 20 * 8192, 10000, false},
      {"t", "b", 20 * 8192, 10000, false},
  };
  std::vector<Query> workload = {
      {"t", "a", 0.01, 2.0},
      {"t", "b", 0.05, 1.0},
      {"t", "c", 0.01, 1.0},  // no matching index: heap or full index scan
  };
  auto cost = WorkloadCost(workload, options, params);
  ASSERT_TRUE(cost.ok());
  // Removing an option can only raise the cost.
  auto cost_less = WorkloadCost(
      workload, {options[0], options[1]}, params);
  ASSERT_TRUE(cost_less.ok());
  EXPECT_LE(*cost, *cost_less);
}

TEST(CostModelTest, ValidationErrors) {
  CostModelParams params;
  EXPECT_FALSE(WorkloadCost({{"t", "a", 0.0, 1.0}},
                            {Heap(10, 8192)}, params)
                   .ok());
  EXPECT_FALSE(WorkloadCost({{"missing", "a", 0.5, 1.0}},
                            {Heap(10, 8192)}, params)
                   .ok());
}

TEST(CostModelTest, CandidateBenefitNonNegativeAndMonotone) {
  CostModelParams params;
  std::vector<PhysicalOption> baseline = {Heap(100000, 200 * 8192)};
  std::vector<Query> workload = {{"t", "k", 0.01, 1.0}};
  PhysicalOption useful{"t", "k", 200 * 8192, 100000, false};
  PhysicalOption useless{"t", "other", 200 * 8192, 100000, false};
  auto b_useful = CandidateBenefit(workload, baseline, useful, params);
  auto b_useless = CandidateBenefit(workload, baseline, useless, params);
  ASSERT_TRUE(b_useful.ok());
  ASSERT_TRUE(b_useless.ok());
  EXPECT_GT(*b_useful, 0.0);
  EXPECT_DOUBLE_EQ(*b_useless, 0.0);
}

}  // namespace
}  // namespace cfest
