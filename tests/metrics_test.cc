// Tests for the observability layer (common/metrics.h, common/trace.h):
// sharded-counter exactness under concurrent writers with a live snapshot
// reader (run under the TSan CI job), histogram bucket boundaries and
// merge, registry instance registration/retirement, trace-span nesting and
// ring-buffer wrap, and the bit-for-bit parity contract between the legacy
// stats structs (EstimationEngine::CacheStats, RequestCoalescer::Stats,
// LazyAdvisorStats) and the registry counters that back them.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/search.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "datagen/table_gen.h"
#include "estimator/adaptive.h"
#include "estimator/coalesce.h"
#include "estimator/engine.h"

namespace cfest {
namespace {

#ifdef CFEST_METRICS_DISABLED

// The compiled-out build keeps the API but drops all recording; the only
// contract left to pin is that nothing leaks through.
TEST(MetricsDisabledTest, RegistryAndTraceAreInert) {
  metrics::MetricRegistry::Global().GetCounter("cfest.test.off")->Increment();
  EXPECT_TRUE(metrics::MetricRegistry::Global().Snapshot().counters.empty());
  trace::SetEnabled(true);
  EXPECT_FALSE(trace::Enabled());
  { trace::Span span("off"); }
  EXPECT_EQ(trace::TotalStarted(), 0u);
}

#else

using metrics::MetricRegistry;
using metrics::MetricsSnapshot;

std::unique_ptr<Table> WorkloadTable(uint64_t rows = 20000, uint64_t seed = 7) {
  auto table = GenerateTable(
      {ColumnSpec::String("status", 12, 6, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(4, 10)),
       ColumnSpec::String("city", 24, 50, FrequencySpec::Zipf(1.0),
                          LengthSpec::Uniform(4, 20)),
       ColumnSpec::Integer("amount", 400)},
      rows, seed);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

CandidateConfiguration Candidate(const char* col, CompressionType type,
                                 const char* table_name = "") {
  CandidateConfiguration c;
  c.table_name = table_name;
  c.index = {std::string("ix_") + col + "_" + CompressionTypeName(type),
             {col},
             /*clustered=*/false};
  c.scheme = CompressionScheme::Uniform(type);
  c.benefit = 1.0;
  return c;
}

// ---------------------------------------------------------------------------
// Counter / registry concurrency
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterTotalsExactAcrossThreads) {
  metrics::Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
}

TEST(MetricsTest, ConcurrentSnapshotReaderSeesMonotoneExactTotals) {
  // N writer threads hammer one registry counter while a reader snapshots
  // concurrently: every snapshot must be monotone (counters never move
  // backwards) and the final total exact. This is the TSan coverage for
  // the sharded write path racing the aggregating read path.
  const std::string name = "cfest.test.concurrent_snapshot";
  metrics::Counter* counter = MetricRegistry::Global().GetCounter(name);
  const uint64_t before = counter->Value();

  constexpr int kWriters = 4;
  constexpr uint64_t kAddsPerThread = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([counter] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter->Increment();
    });
  }
  uint64_t last_seen = before;
  uint64_t snapshots_taken = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const uint64_t seen =
          MetricRegistry::Global().Snapshot().CounterValue(name);
      EXPECT_GE(seen, last_seen);
      last_seen = seen;
      ++snapshots_taken;
    }
  });
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_GT(snapshots_taken, 0u);
  EXPECT_EQ(counter->Value() - before, kWriters * kAddsPerThread);
  EXPECT_EQ(MetricRegistry::Global().Snapshot().CounterValue(name) - before,
            kWriters * kAddsPerThread);
}

TEST(MetricsTest, RegistrationFoldsRetiredInstanceIntoSnapshot) {
  const std::string name = "cfest.test.instance_retire";
  const uint64_t before =
      MetricRegistry::Global().Snapshot().CounterValue(name);
  {
    metrics::Counter instance;
    auto registration =
        MetricRegistry::Global().RegisterCounters({{name, &instance}});
    instance.Add(41);
    // Live instance visible in the snapshot...
    EXPECT_EQ(MetricRegistry::Global().Snapshot().CounterValue(name) - before,
              41u);
    instance.Add(1);
  }
  // ...and its final value folded into the retired total on destruction.
  EXPECT_EQ(MetricRegistry::Global().Snapshot().CounterValue(name) - before,
            42u);
}

TEST(MetricsTest, GaugeSetAddAndSnapshot) {
  metrics::Gauge* gauge =
      MetricRegistry::Global().GetGauge("cfest.test.gauge");
  gauge->Set(7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 4);
  MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.gauges.at("cfest.test.gauge"), 4);
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(metrics::HistogramBucketIndex(0), 0u);
  EXPECT_EQ(metrics::HistogramBucketIndex(1), 1u);
  EXPECT_EQ(metrics::HistogramBucketIndex(2), 2u);
  EXPECT_EQ(metrics::HistogramBucketIndex(3), 2u);
  EXPECT_EQ(metrics::HistogramBucketIndex(4), 3u);
  EXPECT_EQ(metrics::HistogramBucketIndex(1023), 10u);
  EXPECT_EQ(metrics::HistogramBucketIndex(1024), 11u);
  EXPECT_EQ(metrics::HistogramBucketIndex((1ull << 63) - 1), 63u);
  EXPECT_EQ(metrics::HistogramBucketIndex(1ull << 63), 64u);
  EXPECT_EQ(metrics::HistogramBucketIndex(~0ull), 64u);
  // Upper bounds bracket their bucket.
  EXPECT_EQ(metrics::HistogramBucketUpperBound(0), 0u);
  EXPECT_EQ(metrics::HistogramBucketUpperBound(1), 1u);
  EXPECT_EQ(metrics::HistogramBucketUpperBound(2), 3u);
  EXPECT_EQ(metrics::HistogramBucketUpperBound(11), 2047u);
  EXPECT_EQ(metrics::HistogramBucketUpperBound(64), ~0ull);
  for (uint64_t v : {0ull, 1ull, 7ull, 4096ull, ~0ull}) {
    const size_t b = metrics::HistogramBucketIndex(v);
    EXPECT_LE(v, metrics::HistogramBucketUpperBound(b));
    if (b > 0) {
      EXPECT_GT(v, metrics::HistogramBucketUpperBound(b - 1));
    }
  }
}

TEST(MetricsTest, HistogramRecordAndMerge) {
  metrics::Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(5);
  h.Record(5);
  metrics::HistogramData data = h.Data();
  EXPECT_EQ(data.count, 4u);
  EXPECT_EQ(data.sum, 11u);
  EXPECT_EQ(data.buckets[0], 1u);
  EXPECT_EQ(data.buckets[1], 1u);
  EXPECT_EQ(data.buckets[3], 2u);

  metrics::HistogramData other;
  other.count = 2;
  other.sum = 100;
  other.buckets[0] = 1;
  other.buckets[7] = 1;
  data.Merge(other);
  EXPECT_EQ(data.count, 6u);
  EXPECT_EQ(data.sum, 111u);
  EXPECT_EQ(data.buckets[0], 2u);
  EXPECT_EQ(data.buckets[3], 2u);
  EXPECT_EQ(data.buckets[7], 1u);
}

TEST(MetricsTest, QuantileEmptyHistogramIsZero) {
  metrics::HistogramData data;
  EXPECT_EQ(data.Quantile(0.5), 0.0);
  EXPECT_EQ(data.Quantile(0.99), 0.0);
}

TEST(MetricsTest, QuantileExactWhenBucketIsSingleValued) {
  // Buckets 0 ([0,0]) and 1 ([1,1]) hold exactly one value, so the
  // interpolation collapses and the quantile is exact.
  metrics::Histogram zeros;
  for (int i = 0; i < 10; ++i) zeros.Record(0);
  EXPECT_EQ(zeros.Quantile(0.5), 0.0);
  metrics::Histogram ones;
  for (int i = 0; i < 10; ++i) ones.Record(1);
  EXPECT_EQ(ones.Quantile(0.1), 1.0);
  EXPECT_EQ(ones.Quantile(0.99), 1.0);
}

TEST(MetricsTest, QuantileInterpolatesWithinBucketBounds) {
  // 50 values of 0 and 50 values in bucket 4 ([8, 15]).
  metrics::Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(0);
  for (int i = 0; i < 50; ++i) h.Record(12);
  // p50 lands exactly at the end of the zero bucket.
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  // p99's rank (99 of 100) falls inside bucket 4: the estimate must lie
  // within that bucket's range even though 12 is the only recorded value.
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p99, 8.0);
  EXPECT_LE(p99, 15.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(0.99));
  EXPECT_LE(h.Quantile(0.99), h.Quantile(1.0));
  // Out-of-range q clamps instead of reading past the buckets.
  EXPECT_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_EQ(h.Quantile(2.0), h.Quantile(1.0));
}

TEST(MetricsTest, HistogramTotalsExactAcrossThreads) {
  metrics::Histogram h;
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t i = 0; i < kPerThread; ++i) h.Record(i & 1023);
    });
  }
  for (std::thread& t : threads) t.join();
  metrics::HistogramData data = h.Data();
  EXPECT_EQ(data.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : data.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, data.count);
}

TEST(MetricsTest, ScopedTimerRespectsTimingGate) {
  metrics::Histogram* h =
      MetricRegistry::Global().GetHistogram("cfest.test.timer_ns");
  const uint64_t before = h->Data().count;
  metrics::SetTimingEnabled(false);
  { metrics::ScopedTimer timer(h); }
  EXPECT_EQ(h->Data().count, before);
  metrics::SetTimingEnabled(true);
  { metrics::ScopedTimer timer(h); }
  EXPECT_EQ(h->Data().count, before + 1);
}

// ---------------------------------------------------------------------------
// Export formats
// ---------------------------------------------------------------------------

TEST(MetricsTest, SnapshotJsonAndPrometheusContainRegisteredNames) {
  MetricRegistry::Global().GetCounter("cfest.test.export")->Add(3);
  MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("cfest.test.export"), std::string::npos);
  const std::string prom = snapshot.ToPrometheusText();
  EXPECT_NE(prom.find("cfest_test_export"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE cfest_test_export counter"),
            std::string::npos);
}

TEST(MetricsTest, SnapshotExportsHistogramQuantiles) {
  metrics::Histogram* h =
      MetricRegistry::Global().GetHistogram("cfest.test.quantile_ns");
  for (int i = 0; i < 100; ++i) h->Record(static_cast<uint64_t>(i));
  MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const std::string prom = snapshot.ToPrometheusText();
  EXPECT_NE(prom.find("cfest_test_quantile_ns_p50 "), std::string::npos);
  EXPECT_NE(prom.find("cfest_test_quantile_ns_p99 "), std::string::npos);
  EXPECT_NE(prom.find("# TYPE cfest_test_quantile_ns_p50 gauge"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(TraceTest, DisabledSpansRecordNothing) {
  trace::Reset();
  trace::SetEnabled(false);
  { trace::Span span("test.disabled"); }
  EXPECT_EQ(trace::TotalStarted(), 0u);
  EXPECT_TRUE(trace::CollectRecords().empty());
}

TEST(TraceTest, NestedSpansCarryDepthAndContainment) {
  trace::Reset();
  trace::SetEnabled(true);
  {
    trace::Span outer("test.outer");
    {
      trace::Span inner("test.inner");
    }
  }
  trace::SetEnabled(false);
  std::vector<trace::SpanRecord> records = trace::CollectRecords();
  ASSERT_EQ(records.size(), 2u);
  // Completion order: inner first.
  EXPECT_STREQ(records[0].name, "test.inner");
  EXPECT_EQ(records[0].depth, 1u);
  EXPECT_STREQ(records[1].name, "test.outer");
  EXPECT_EQ(records[1].depth, 0u);
  // The child's interval lies inside the parent's.
  EXPECT_GE(records[0].start_ns, records[1].start_ns);
  EXPECT_LE(records[0].start_ns + records[0].duration_ns,
            records[1].start_ns + records[1].duration_ns);
}

TEST(TraceTest, RingBufferWrapKeepsMostRecentRecords) {
  trace::Reset();
  trace::SetRingCapacity(16);
  trace::SetEnabled(true);
  constexpr uint64_t kSpans = 100;
  for (uint64_t i = 0; i < kSpans; ++i) {
    trace::Span span("test.wrap");
  }
  trace::SetEnabled(false);
  EXPECT_EQ(trace::TotalStarted(), kSpans);
  std::vector<trace::SpanRecord> records = trace::CollectRecords();
  EXPECT_EQ(records.size(), 16u);
  // Oldest-first ordering within the retained window.
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].start_ns, records[i - 1].start_ns);
  }
  trace::Reset();
  trace::SetRingCapacity(trace::kDefaultRingCapacity);
  EXPECT_EQ(trace::TotalStarted(), 0u);
}

TEST(TraceTest, ChromeExportIsWellFormed) {
  trace::Reset();
  trace::SetEnabled(true);
  {
    trace::Span span("test.export");
  }
  trace::SetEnabled(false);
  const std::string json = trace::ExportChromeTraceJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Legacy-stats parity: the compat structs and the registry must agree bit
// for bit, because they read the same Counter objects.
// ---------------------------------------------------------------------------

TEST(MetricsParityTest, EngineCacheStatsMatchesRegistryDeltas) {
  std::unique_ptr<Table> table = WorkloadTable();
  const MetricsSnapshot before = MetricRegistry::Global().Snapshot();

  EstimationEngineOptions options;
  options.base.fraction = 0.02;
  options.num_threads = 1;
  EstimationEngine engine(*table, options);
  std::vector<CandidateConfiguration> candidates = {
      Candidate("status", CompressionType::kNullSuppression),
      Candidate("status", CompressionType::kDictionaryPage),
      Candidate("city", CompressionType::kRle)};
  auto sized = engine.EstimateAll(candidates);
  ASSERT_TRUE(sized.ok());
  const EstimationEngine::CacheStats stats = engine.cache_stats();

  const MetricsSnapshot after = MetricRegistry::Global().Snapshot();
  auto delta = [&](const char* name) {
    return after.CounterValue(name) - before.CounterValue(name);
  };
  EXPECT_EQ(delta("cfest.engine.samples_drawn"), stats.samples_drawn);
  EXPECT_EQ(delta("cfest.engine.index_builds"), stats.index_builds);
  EXPECT_EQ(delta("cfest.engine.index_cache_hits"), stats.index_cache_hits);
  EXPECT_EQ(delta("cfest.engine.index_extensions"), stats.index_extensions);
  EXPECT_EQ(delta("cfest.engine.lock_free_pins"), stats.lock_free_pins);
  EXPECT_EQ(delta("cfest.engine.locked_pins"), stats.locked_pins);
  EXPECT_EQ(delta("cfest.engine.epochs_published"), stats.epochs_published);
  EXPECT_GT(stats.samples_drawn, 0u);
  EXPECT_GT(stats.index_builds, 0u);
}

TEST(MetricsParityTest, CoalescerStatsMatchesRegistryDeltas) {
  const MetricsSnapshot before = MetricRegistry::Global().Snapshot();
  RequestCoalescer coalescer;
  RequestCoalescer::Ticket a = coalescer.Admit("key1");
  RequestCoalescer::Ticket b = coalescer.Admit("key1");  // merges into a
  RequestCoalescer::Ticket c = coalescer.Admit("key2");
  EXPECT_TRUE(a.owner);
  EXPECT_FALSE(b.owner);
  EXPECT_TRUE(c.owner);
  coalescer.Complete("key1", SizingOutcome{});
  coalescer.Complete("key2", SizingOutcome{});
  const RequestCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.merged, 1u);
  const MetricsSnapshot after = MetricRegistry::Global().Snapshot();
  auto delta = [&](const char* name) {
    return after.CounterValue(name) - before.CounterValue(name);
  };
  EXPECT_EQ(delta("cfest.coalescer.requests"), stats.requests);
  EXPECT_EQ(delta("cfest.coalescer.admitted"), stats.admitted);
  EXPECT_EQ(delta("cfest.coalescer.merged"), stats.merged);
}

TEST(MetricsParityTest, LazyAdvisorStatsMatchesRegistryDeltas) {
  std::unique_ptr<Table> table = WorkloadTable();
  const MetricsSnapshot before = MetricRegistry::Global().Snapshot();

  EstimationEngineOptions options;
  options.base.fraction = 0.01;
  options.num_threads = 1;
  EstimationEngine engine(*table, options);
  std::vector<CandidateConfiguration> candidates = {
      Candidate("status", CompressionType::kNullSuppression),
      Candidate("city", CompressionType::kDictionaryPage),
      Candidate("amount", CompressionType::kNullSuppression),
      Candidate("status", CompressionType::kNone)};
  LazyAdvisorStats stats;
  auto rec = AdviseConfigurationsLazy(engine, candidates,
                                      /*storage_bound=*/1ull << 40,
                                      PrecisionTarget{}, &stats);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(stats.candidates, candidates.size());
  EXPECT_GT(stats.nodes_visited, 0u);

  const MetricsSnapshot after = MetricRegistry::Global().Snapshot();
  auto delta = [&](const char* name) {
    return after.CounterValue(name) - before.CounterValue(name);
  };
  EXPECT_EQ(delta("cfest.lazy.candidates"), stats.candidates);
  EXPECT_EQ(delta("cfest.lazy.refined"), stats.refined);
  EXPECT_EQ(delta("cfest.lazy.refine_rounds"), stats.refine_rounds);
  EXPECT_EQ(delta("cfest.lazy.nodes_visited"), stats.nodes_visited);
  EXPECT_EQ(delta("cfest.lazy.nodes_pruned"), stats.nodes_pruned);
  EXPECT_EQ(delta("cfest.lazy.total_rows_sized"), stats.total_rows_sized);
  EXPECT_EQ(delta("cfest.lazy.coarse_rows"), stats.coarse_rows);
}

// ---------------------------------------------------------------------------
// Per-candidate cumulative sizing attribution (the adaptive-loop fix)
// ---------------------------------------------------------------------------

TEST(MetricsParityTest, AdaptiveCumulativeRowsSizedSumsRoundsParticipated) {
  std::unique_ptr<Table> table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.005;
  options.num_threads = 1;
  EstimationEngine engine(*table, options);

  PrecisionTarget target;
  target.rel_error = 0.01;  // tight: forces several growth rounds
  target.min_rows = 100;
  std::vector<CandidateConfiguration> candidates = {
      Candidate("status", CompressionType::kNullSuppression),
      Candidate("city", CompressionType::kDictionaryPage),
      Candidate("status", CompressionType::kNone)};
  auto batch = EstimateAllAdaptive(engine, candidates, target);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->tables.size(), 1u);
  const std::vector<uint64_t>& rows_per_round =
      batch->tables[0].rows_per_round;
  ASSERT_GT(rows_per_round.size(), 1u)
      << "workload too easy: need multiple growth rounds";

  for (size_t i = 0; i < candidates.size(); ++i) {
    const AdaptiveCandidateResult& r = batch->candidates[i];
    if (IsUncompressedScheme(candidates[i].scheme)) {
      // Exact candidates never sample.
      EXPECT_EQ(r.cumulative_rows_sized, 0u);
      continue;
    }
    // A candidate estimated in rounds 1..k accumulates exactly the first k
    // round sizes — attribution that survives dropout, unlike rows_sampled
    // (the last round's sample only).
    ASSERT_GE(r.rounds, 1u);
    ASSERT_LE(r.rounds, rows_per_round.size());
    uint64_t expected = 0;
    for (uint32_t j = 0; j < r.rounds; ++j) expected += rows_per_round[j];
    EXPECT_EQ(r.cumulative_rows_sized, expected)
        << "candidate " << i << " participated in " << r.rounds
        << " round(s)";
    EXPECT_EQ(r.rows_sampled, rows_per_round[r.rounds - 1]);
    if (r.rounds > 1) {
      EXPECT_GT(r.cumulative_rows_sized, r.rows_sampled);
    }
  }
}

#endif  // CFEST_METRICS_DISABLED

}  // namespace
}  // namespace cfest
