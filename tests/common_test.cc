// Tests for the common substrate: Status/Result, Slice, Random, stats,
// bit utilities, and table formatting.

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bit_util.h"
#include "common/format.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/stats.h"
#include "common/status.h"

namespace cfest {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad fraction");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad fraction");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad fraction");
}

TEST(StatusTest, AllFactoriesSetMatchingCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyPreservesError) {
  Status st = Status::Corruption("page 7");
  Status copy = st;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "page 7");
  // Original unchanged.
  EXPECT_TRUE(st.IsCorruption());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status st = Status::NotFound("t");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsNotFound());
}

Status FailsAtStep(int step) {
  CFEST_RETURN_NOT_OK(step >= 1 ? Status::OK() : Status::Internal("step1"));
  CFEST_RETURN_NOT_OK(step >= 2 ? Status::OK() : Status::Internal("step2"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(FailsAtStep(2).ok());
  EXPECT_EQ(FailsAtStep(1).message(), "step2");
  EXPECT_EQ(FailsAtStep(0).message(), "step1");
}

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

Result<int> DoubledViaMacro(int v) {
  CFEST_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  Result<int> ok = DoubledViaMacro(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_FALSE(DoubledViaMacro(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------------------
// Slice
// ---------------------------------------------------------------------------

TEST(SliceTest, BasicViews) {
  std::string s = "hello world";
  Slice slice(s);
  EXPECT_EQ(slice.size(), 11u);
  EXPECT_EQ(slice[4], 'o');
  EXPECT_EQ(slice.ToString(), s);
  EXPECT_FALSE(slice.empty());
  EXPECT_TRUE(Slice().empty());
}

TEST(SliceTest, SubSliceAndRemovePrefix) {
  Slice s("abcdef");
  EXPECT_EQ(s.SubSlice(2, 3).ToString(), "cde");
  EXPECT_EQ(s.SubSlice(4, 100).ToString(), "ef");  // clamped
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
}

TEST(SliceTest, ComparisonOrdersLexicographically) {
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);  // prefix sorts first
  EXPECT_GT(Slice("b").Compare(Slice("ab")), 0);
  EXPECT_TRUE(Slice("ab") < Slice("b"));
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("abcdef").StartsWith(Slice("abc")));
  EXPECT_TRUE(Slice("abc").StartsWith(Slice("")));
  EXPECT_FALSE(Slice("ab").StartsWith(Slice("abc")));
}

TEST(SliceTest, EmbeddedNulBytesCompareByLength) {
  std::string a("a\0b", 3);
  std::string b("a\0c", 3);
  EXPECT_LT(Slice(a).Compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a).size(), 3u);
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RandomTest, NextBoundedStaysInBounds) {
  Random rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RandomTest, NextBoundedCoversSmallDomains) {
  Random rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, NextInRangeInclusive) {
  Random rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, GaussianMomentsRoughlyStandard) {
  Random rng(19);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RandomTest, ForkProducesIndependentStream) {
  Random a(31);
  Random child = a.Fork();
  // The child must not replay the parent's stream.
  Random b(31);
  b.Fork();
  EXPECT_EQ(a.NextU64(), b.NextU64());  // parents stay in lockstep
  uint64_t c1 = child.NextU64();
  EXPECT_NE(c1, a.NextU64());
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(StatsTest, RunningStatsMatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  double m2 = 0;
  for (double x : xs) m2 += (x - 6.2) * (x - 6.2);
  EXPECT_NEAR(rs.variance(), m2 / 4.0, 1e-12);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 16.0);
  EXPECT_NEAR(rs.sum(), 31.0, 1e-12);
}

TEST(StatsTest, RunningStatsDegenerateCases) {
  RunningStats rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.Add(3.0);
  EXPECT_EQ(rs.mean(), 3.0);
  EXPECT_EQ(rs.variance(), 0.0);  // single sample
}

TEST(StatsTest, SummarizeComputesQuantiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  Summary s = Summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.01);
  EXPECT_NEAR(s.p99, 99.01, 0.01);
}

TEST(StatsTest, QuantileSortedEdges) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_EQ(QuantileSorted(xs, 0.0), 1.0);
  EXPECT_EQ(QuantileSorted(xs, 1.0), 3.0);
  EXPECT_EQ(QuantileSorted(xs, 0.5), 2.0);
  EXPECT_EQ(QuantileSorted({}, 0.5), 0.0);
}

TEST(StatsTest, RatioErrorDefinition) {
  EXPECT_DOUBLE_EQ(RatioError(0.5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(RatioError(0.5, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(RatioError(0.25, 0.5), 2.0);  // symmetric
  EXPECT_GE(RatioError(0.1, 0.9), 1.0);
  EXPECT_TRUE(std::isinf(RatioError(0.5, 0.0)));
  EXPECT_TRUE(std::isinf(RatioError(0.0, 0.5)));
  EXPECT_DOUBLE_EQ(RatioError(0.0, 0.0), 1.0);
}

TEST(StatsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(2.0, 2.5), 0.25);
  EXPECT_DOUBLE_EQ(RelativeError(2.0, 1.5), 0.25);
}

// ---------------------------------------------------------------------------
// Bit utilities
// ---------------------------------------------------------------------------

TEST(BitUtilTest, BitsFor) {
  EXPECT_EQ(BitsFor(0), 0);
  EXPECT_EQ(BitsFor(1), 0);
  EXPECT_EQ(BitsFor(2), 1);
  EXPECT_EQ(BitsFor(3), 2);
  EXPECT_EQ(BitsFor(4), 2);
  EXPECT_EQ(BitsFor(5), 3);
  EXPECT_EQ(BitsFor(256), 8);
  EXPECT_EQ(BitsFor(257), 9);
  EXPECT_EQ(BitsFor(1ull << 32), 32);
}

TEST(BitUtilTest, BytesForBits) {
  EXPECT_EQ(BytesForBits(0), 0u);
  EXPECT_EQ(BytesForBits(1), 1u);
  EXPECT_EQ(BytesForBits(8), 1u);
  EXPECT_EQ(BytesForBits(9), 2u);
  EXPECT_EQ(BytesForBits(64), 8u);
}

TEST(BitUtilTest, WriterReaderRoundTrip) {
  std::string buf;
  BitWriter writer(&buf);
  writer.Put(5, 3);
  writer.Put(0, 0);  // zero-width write is a no-op
  writer.Put(1023, 10);
  writer.Put(1, 1);
  BitReader reader{Slice(buf)};
  uint64_t v = 0;
  ASSERT_TRUE(reader.Get(3, &v));
  EXPECT_EQ(v, 5u);
  ASSERT_TRUE(reader.Get(0, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(reader.Get(10, &v));
  EXPECT_EQ(v, 1023u);
  ASSERT_TRUE(reader.Get(1, &v));
  EXPECT_EQ(v, 1u);
}

TEST(BitUtilTest, ReaderFailsOnExhaustion) {
  std::string buf;
  BitWriter writer(&buf);
  writer.Put(0xFF, 8);
  BitReader reader{Slice(buf)};
  uint64_t v = 0;
  ASSERT_TRUE(reader.Get(8, &v));
  EXPECT_FALSE(reader.Get(1, &v));
}

TEST(BitUtilTest, AlignSkipsToByteBoundary) {
  std::string buf;
  BitWriter writer(&buf);
  writer.Put(1, 1);
  writer.Align();
  writer.Put(0xAB, 8);
  EXPECT_EQ(buf.size(), 2u);
  BitReader reader{Slice(buf)};
  uint64_t v = 0;
  ASSERT_TRUE(reader.Get(1, &v));
  reader.Align();
  ASSERT_TRUE(reader.Get(8, &v));
  EXPECT_EQ(v, 0xABu);
}

// Property sweep: random widths round-trip through the bit stream.
class BitRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(BitRoundTripTest, RandomValuesRoundTrip) {
  const int width = GetParam();
  Random rng(1000 + width);
  std::vector<uint64_t> values;
  std::string buf;
  BitWriter writer(&buf);
  for (int i = 0; i < 257; ++i) {
    const uint64_t mask = width == 64 ? ~0ull : ((1ull << width) - 1);
    const uint64_t v = rng.NextU64() & mask;
    values.push_back(v);
    writer.Put(v, width);
  }
  BitReader reader{Slice(buf)};
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(reader.Get(width, &v));
    EXPECT_EQ(v, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitRoundTripTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 9, 13, 16, 17, 24,
                                           31, 32, 33, 48, 63, 64));

// ---------------------------------------------------------------------------
// Format
// ---------------------------------------------------------------------------

TEST(FormatTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.42135, 4), "0.4214");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
}

TEST(FormatTest, TablePrinterAlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"cf", "0.42"});
  table.AddRow({"a-much-longer-name", "1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| a-much-longer-name "), std::string::npos);
  // All lines have the same width.
  size_t first_line_len = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_line_len);
    pos = next + 1;
  }
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(FormatTest, TablePrinterHandlesShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| 1 "), std::string::npos);
}

// Regression for the CLI numeric-flag parsing: bare strtoull silently
// turned "--bound 10GB" into 10 bytes and "--bound junk" into 0. The
// strict parsers must consume the whole string or fail.
TEST(FormatTest, ParseUint64RejectsPartialAndGarbageInput) {
  ASSERT_TRUE(ParseUint64("0").ok());
  EXPECT_EQ(*ParseUint64("0"), 0u);
  EXPECT_EQ(*ParseUint64("10737418240"), 10737418240ull);
  EXPECT_EQ(*ParseUint64("18446744073709551615"), ~0ull);

  EXPECT_FALSE(ParseUint64("10GB").ok());
  EXPECT_FALSE(ParseUint64("junk").ok());
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("+1").ok());
  EXPECT_FALSE(ParseUint64(" 1").ok());
  EXPECT_FALSE(ParseUint64("1 ").ok());
  EXPECT_FALSE(ParseUint64("1.5").ok());
  EXPECT_FALSE(ParseUint64("0x10").ok());
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());  // 2^64
  EXPECT_FALSE(ParseUint64("99999999999999999999999").ok());
}

TEST(FormatTest, ParseDoubleRejectsPartialAndGarbageInput) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.05"), 0.05);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1.25e2"), -125.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("42"), 42.0);

  EXPECT_FALSE(ParseDouble("0.05x").ok());
  EXPECT_FALSE(ParseDouble("junk").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble(" 0.5").ok());
  EXPECT_FALSE(ParseDouble("0.5 ").ok());
  EXPECT_FALSE(ParseDouble("inf").ok());
  EXPECT_FALSE(ParseDouble("nan").ok());
  EXPECT_FALSE(ParseDouble("1e999").ok());
  // strtod would accept C99 hex floats; the strict parser must not.
  EXPECT_FALSE(ParseDouble("0x10").ok());
  EXPECT_FALSE(ParseDouble("0x1p-3").ok());
}

}  // namespace
}  // namespace cfest
