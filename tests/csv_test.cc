// Tests for CSV import/export and the textual schema notation used by the
// CLI tool.

#include <string>

#include <gtest/gtest.h>

#include "storage/csv.h"

namespace cfest {
namespace {

TEST(SchemaSpecTest, ParsesAllTypes) {
  Result<Schema> schema = ParseSchemaSpec(
      "a:int32,b:int64,c:date,d:decimal,e:char(20),f:varchar(44)");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->num_columns(), 6u);
  EXPECT_EQ(schema->column(0).type, Int32Type());
  EXPECT_EQ(schema->column(1).type, Int64Type());
  EXPECT_EQ(schema->column(2).type, DateType());
  EXPECT_EQ(schema->column(3).type, DecimalType());
  EXPECT_EQ(schema->column(4).type, CharType(20));
  EXPECT_EQ(schema->column(5).type, VarcharType(44));
}

TEST(SchemaSpecTest, RoundTripsThroughSchemaToSpec) {
  const std::string spec = "id:int64,name:char(12),note:varchar(80)";
  Result<Schema> schema = ParseSchemaSpec(spec);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(SchemaToSpec(*schema), spec);
}

TEST(SchemaSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseSchemaSpec("").ok());
  EXPECT_FALSE(ParseSchemaSpec("noname").ok());
  EXPECT_FALSE(ParseSchemaSpec(":int64").ok());
  EXPECT_FALSE(ParseSchemaSpec("a:").ok());
  EXPECT_FALSE(ParseSchemaSpec("a:int128").ok());
  EXPECT_FALSE(ParseSchemaSpec("a:char()").ok());
  EXPECT_FALSE(ParseSchemaSpec("a:char(0)").ok());
  EXPECT_FALSE(ParseSchemaSpec("a:char(xyz)").ok());
  EXPECT_FALSE(ParseSchemaSpec("a:int64,a:int64").ok());  // duplicate name
}

class CsvTest : public ::testing::Test {
 protected:
  Schema schema_ = std::move(ParseSchemaSpec("id:int64,city:char(16)"))
                       .ValueOrDie();
};

TEST_F(CsvTest, ParsesPlainRows) {
  auto table = LoadCsv("id,city\n1,berlin\n2,paris\n", schema_);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->DecodeRow(0)->at(0).AsInt(), 1);
  EXPECT_EQ((*table)->DecodeRow(1)->at(1).AsString(), "paris");
}

TEST_F(CsvTest, HeaderToggle) {
  auto with = LoadCsv("id,city\n1,x\n", schema_, /*has_header=*/true);
  auto without = LoadCsv("1,x\n", schema_, /*has_header=*/false);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ((*with)->num_rows(), 1u);
  EXPECT_EQ((*without)->num_rows(), 1u);
}

TEST_F(CsvTest, QuotedFieldsWithCommasQuotesNewlines) {
  const std::string csv =
      "id,city\n"
      "1,\"a,b\"\n"
      "2,\"say \"\"hi\"\"\"\n"
      "3,\"line1\nline2\"\n";
  auto table = LoadCsv(csv, schema_);
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ((*table)->num_rows(), 3u);
  EXPECT_EQ((*table)->DecodeRow(0)->at(1).AsString(), "a,b");
  EXPECT_EQ((*table)->DecodeRow(1)->at(1).AsString(), "say \"hi\"");
  EXPECT_EQ((*table)->DecodeRow(2)->at(1).AsString(), "line1\nline2");
}

TEST_F(CsvTest, CrLfAndTrailingNewlineHandling) {
  auto table = LoadCsv("id,city\r\n1,x\r\n2,y", schema_);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), 2u);
}

TEST_F(CsvTest, NegativeIntegers) {
  auto table = LoadCsv("id,city\n-42,x\n", schema_);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->DecodeRow(0)->at(0).AsInt(), -42);
}

TEST_F(CsvTest, RejectsBadRows) {
  // Wrong arity.
  EXPECT_FALSE(LoadCsv("id,city\n1\n", schema_).ok());
  EXPECT_FALSE(LoadCsv("id,city\n1,x,extra\n", schema_).ok());
  // Non-integer.
  EXPECT_FALSE(LoadCsv("id,city\nabc,x\n", schema_).ok());
  EXPECT_FALSE(LoadCsv("id,city\n1.5,x\n", schema_).ok());
  // Empty integer.
  EXPECT_FALSE(LoadCsv("id,city\n,x\n", schema_).ok());
  // Oversized string for char(16).
  EXPECT_FALSE(
      LoadCsv("id,city\n1,aaaaaaaaaaaaaaaaaaaaaaaaa\n", schema_).ok());
  // Unterminated quote.
  EXPECT_FALSE(LoadCsv("id,city\n1,\"open\n", schema_).ok());
  // Quote mid-field.
  EXPECT_FALSE(LoadCsv("id,city\n1,ab\"c\n", schema_).ok());
}

TEST_F(CsvTest, WriteReadRoundTrip) {
  TableBuilder builder(schema_);
  ASSERT_TRUE(builder.Append({Value::Int(7), Value::Str("a,b \"q\"")}).ok());
  ASSERT_TRUE(builder.Append({Value::Int(-1), Value::Str("plain")}).ok());
  auto table = builder.Finish();
  const std::string csv = WriteCsv(*table);
  auto reloaded = LoadCsv(csv, schema_);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_EQ((*reloaded)->num_rows(), 2u);
  for (RowId id = 0; id < 2; ++id) {
    EXPECT_EQ(*(*reloaded)->DecodeRow(id), *table->DecodeRow(id));
  }
}

TEST_F(CsvTest, BlankLinesSkipped) {
  auto table = LoadCsv("id,city\n1,x\n\n2,y\n", schema_);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), 2u);
}

TEST(CsvSingleColumnTest, EmptyFieldDistinctFromBlankLine) {
  Schema schema = std::move(ParseSchemaSpec("s:char(4)")).ValueOrDie();
  TableBuilder builder(schema);
  ASSERT_TRUE(builder.Append({Value::Str("")}).ok());
  ASSERT_TRUE(builder.Append({Value::Str("x")}).ok());
  auto table = builder.Finish();
  const std::string csv = WriteCsv(*table);
  // The empty value must be written as "" so it survives the reload.
  EXPECT_NE(csv.find("\"\""), std::string::npos);
  auto reloaded = LoadCsv(csv, schema);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ((*reloaded)->num_rows(), 2u);
  EXPECT_EQ((*reloaded)->DecodeRow(0)->at(0).AsString(), "");
}

TEST_F(CsvTest, EmptyInputYieldsEmptyTable) {
  auto table = LoadCsv("", schema_);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 0u);
  auto header_only = LoadCsv("id,city\n", schema_);
  ASSERT_TRUE(header_only.ok());
  EXPECT_EQ((*header_only)->num_rows(), 0u);
}

}  // namespace
}  // namespace cfest
