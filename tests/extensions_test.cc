// Tests for the extension modules: the per-column scheme recommender and
// the streaming (reservoir) SampleCF estimator.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "datagen/table_gen.h"
#include "estimator/column_profile.h"
#include "estimator/compression_fraction.h"
#include "estimator/hybrid.h"
#include "estimator/scheme_advisor.h"
#include "estimator/streaming.h"

namespace cfest {
namespace {

/// Three columns with clearly different best schemes:
///   key     — sequential int64 (delta should win on the sorted index)
///   status  — 4 distinct short strings (dictionary family should win)
///   blob    — near-unique strings with heavy padding slack (NS-ish wins).
std::unique_ptr<Table> MixedWorkload(uint64_t n) {
  auto table = GenerateTable(
      {ColumnSpec::Integer("key", 0),
       ColumnSpec::String("status", 16, 4, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(6, 10)),
       ColumnSpec::String("blob", 64, n / 2, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(4, 24))},
      n, 99);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

// ---------------------------------------------------------------------------
// RecommendScheme
// ---------------------------------------------------------------------------

TEST(RecommendSchemeTest, PicksSensiblePerColumnWinners) {
  auto table = MixedWorkload(20000);
  SampleCFOptions options;
  options.fraction = 0.05;
  Random rng(7);
  auto rec = RecommendScheme(*table, {"cx", {"key"}, /*clustered=*/true}, {},
                             options, &rng);
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_EQ(rec->columns.size(), 3u);
  // Sorted sequential keys: delta wins by an order of magnitude.
  EXPECT_EQ(rec->columns[0].best, CompressionType::kDelta);
  EXPECT_LT(rec->columns[0].estimated_cf, 0.3);
  // Low-cardinality status: one of the dictionary/RLE family.
  const CompressionType status_best = rec->columns[1].best;
  EXPECT_TRUE(status_best == CompressionType::kDictionaryPage ||
              status_best == CompressionType::kPrefixDictionary ||
              status_best == CompressionType::kDictionaryGlobal ||
              status_best == CompressionType::kRle)
      << CompressionTypeName(status_best);
  // Every winner must not inflate.
  for (const auto& col : rec->columns) {
    EXPECT_LE(col.estimated_cf, 1.01) << col.column_name;
  }
  // The assembled scheme is usable and the whole-index CF is consistent.
  EXPECT_EQ(rec->scheme.per_column.size(), 3u);
  EXPECT_GT(rec->estimated_cf, 0.0);
  EXPECT_LT(rec->estimated_cf, 1.0);
}

TEST(RecommendSchemeTest, RecommendationBeatsUniformSchemes) {
  auto table = MixedWorkload(20000);
  SampleCFOptions options;
  options.fraction = 0.05;
  Random rng(11);
  IndexDescriptor desc{"cx", {"key"}, true};
  auto rec = RecommendScheme(*table, desc, {}, options, &rng);
  ASSERT_TRUE(rec.ok());
  // The recommended mixed scheme's *true* CF must beat the best uniform
  // string-safe scheme's true CF (that is the point of per-column choice).
  auto mixed_cf = ComputeTrueCF(*table, desc, rec->scheme);
  ASSERT_TRUE(mixed_cf.ok()) << mixed_cf.status();
  for (CompressionType uniform :
       {CompressionType::kNullSuppression, CompressionType::kDictionaryPage,
        CompressionType::kPrefixDictionary}) {
    auto uniform_cf =
        ComputeTrueCF(*table, desc, CompressionScheme::Uniform(uniform));
    ASSERT_TRUE(uniform_cf.ok());
    EXPECT_LE(mixed_cf->value, uniform_cf->value * 1.02)
        << "vs " << CompressionTypeName(uniform);
  }
}

TEST(RecommendSchemeTest, EstimateTracksTrueMixedCF) {
  auto table = MixedWorkload(20000);
  SampleCFOptions options;
  options.fraction = 0.05;
  Random rng(13);
  IndexDescriptor desc{"cx", {"key"}, true};
  auto rec = RecommendScheme(*table, desc, {}, options, &rng);
  ASSERT_TRUE(rec.ok());
  auto truth = ComputeTrueCF(*table, desc, rec->scheme);
  ASSERT_TRUE(truth.ok());
  // The blob column has d = n/2 (the hard dictionary regime), so allow a
  // loose band; the recommendation itself is still correct.
  EXPECT_LT(std::max(rec->estimated_cf / truth->value,
                     truth->value / rec->estimated_cf),
            1.6);
}

TEST(RecommendSchemeTest, RestrictedCandidatePool) {
  auto table = MixedWorkload(5000);
  SampleCFOptions options;
  options.fraction = 0.1;
  Random rng(17);
  auto rec = RecommendScheme(*table, {"cx", {"key"}, true},
                             {CompressionType::kNullSuppression}, options,
                             &rng);
  ASSERT_TRUE(rec.ok());
  for (const auto& col : rec->columns) {
    EXPECT_TRUE(col.best == CompressionType::kNullSuppression ||
                col.best == CompressionType::kNone)
        << CompressionTypeName(col.best);
  }
}

TEST(RecommendSchemeTest, PropagatesErrors) {
  auto table = MixedWorkload(100);
  SampleCFOptions options;
  options.fraction = 0.0;  // invalid
  Random rng(1);
  EXPECT_FALSE(
      RecommendScheme(*table, {"cx", {"key"}, true}, {}, options, &rng).ok());
  options.fraction = 0.1;
  EXPECT_FALSE(
      RecommendScheme(*table, {"cx", {"missing"}, true}, {}, options, &rng)
          .ok());
}

// ---------------------------------------------------------------------------
// StreamingSampleCF
// ---------------------------------------------------------------------------

TEST(StreamingTest, MatchesBatchEstimateOnFullReservoir) {
  auto table = MixedWorkload(10000);
  StreamingSampleCF::Options options;
  options.sample_capacity = 20000;  // larger than the stream: keeps all rows
  auto streaming = StreamingSampleCF::Make(
      table->schema(), {"cx", {"key"}, true},
      CompressionScheme::Uniform(CompressionType::kNullSuppression), options);
  ASSERT_TRUE(streaming.ok()) << streaming.status();
  for (RowId id = 0; id < table->num_rows(); ++id) {
    ASSERT_TRUE(streaming->Add(table->row(id)).ok());
  }
  EXPECT_EQ(streaming->rows_seen(), 10000u);
  EXPECT_EQ(streaming->reservoir_size(), 10000u);
  auto estimate = streaming->Estimate();
  ASSERT_TRUE(estimate.ok()) << estimate.status();
  // With the whole population in the reservoir the "estimate" is exact.
  auto truth = ComputeTrueCF(
      *table, {"cx", {"key"}, true},
      CompressionScheme::Uniform(CompressionType::kNullSuppression));
  ASSERT_TRUE(truth.ok());
  EXPECT_NEAR(estimate->cf.value, truth->value, 1e-9);
}

TEST(StreamingTest, AccurateWithSmallReservoir) {
  auto table = MixedWorkload(50000);
  StreamingSampleCF::Options options;
  options.sample_capacity = 2000;
  auto streaming = StreamingSampleCF::Make(
      table->schema(), {"cx", {"key"}, true},
      CompressionScheme::Uniform(CompressionType::kNullSuppression), options);
  ASSERT_TRUE(streaming.ok());
  for (RowId id = 0; id < table->num_rows(); ++id) {
    ASSERT_TRUE(streaming->Add(table->row(id)).ok());
  }
  EXPECT_EQ(streaming->reservoir_size(), 2000u);
  auto estimate = streaming->Estimate();
  ASSERT_TRUE(estimate.ok());
  auto truth = ComputeTrueCF(
      *table, {"cx", {"key"}, true},
      CompressionScheme::Uniform(CompressionType::kNullSuppression));
  ASSERT_TRUE(truth.ok());
  // Theorem-1 style accuracy at r = 2000: bound is ~0.011; allow 4x.
  EXPECT_NEAR(estimate->cf.value, truth->value, 0.045);
}

TEST(StreamingTest, EstimateRefreshesAsStreamGrows) {
  auto table = MixedWorkload(6000);
  StreamingSampleCF::Options options;
  options.sample_capacity = 500;
  auto streaming = StreamingSampleCF::Make(
      table->schema(), {"cx", {"key"}, true},
      CompressionScheme::Uniform(CompressionType::kDictionaryPage), options);
  ASSERT_TRUE(streaming.ok());
  double first = 0.0;
  for (RowId id = 0; id < table->num_rows(); ++id) {
    ASSERT_TRUE(streaming->Add(table->row(id)).ok());
    if (id == 999) {
      auto estimate = streaming->Estimate();
      ASSERT_TRUE(estimate.ok());
      first = estimate->cf.value;
    }
  }
  auto final_estimate = streaming->Estimate();
  ASSERT_TRUE(final_estimate.ok());
  EXPECT_GT(first, 0.0);
  EXPECT_GT(final_estimate->cf.value, 0.0);
  // Both snapshots come from the same capped reservoir size.
  EXPECT_EQ(final_estimate->sample_rows, 500u);
}

TEST(StreamingTest, ValidationErrors) {
  auto table = MixedWorkload(10);
  StreamingSampleCF::Options options;
  options.sample_capacity = 0;
  EXPECT_FALSE(StreamingSampleCF::Make(
                   table->schema(), {"cx", {"key"}, true},
                   CompressionScheme::Uniform(CompressionType::kNone), options)
                   .ok());
  options.sample_capacity = 10;
  EXPECT_FALSE(StreamingSampleCF::Make(
                   table->schema(), {"cx", {}, true},
                   CompressionScheme::Uniform(CompressionType::kNone), options)
                   .ok());
  EXPECT_FALSE(StreamingSampleCF::Make(
                   table->schema(), {"cx", {"nope"}, true},
                   CompressionScheme::Uniform(CompressionType::kNone), options)
                   .ok());
  auto streaming = StreamingSampleCF::Make(
      table->schema(), {"cx", {"key"}, true},
      CompressionScheme::Uniform(CompressionType::kNone), options);
  ASSERT_TRUE(streaming.ok());
  EXPECT_FALSE(streaming->Estimate().ok());  // nothing offered yet
  std::string bad(3, 'x');
  EXPECT_FALSE(streaming->Add(Slice(bad)).ok());
}

// ---------------------------------------------------------------------------
// HybridDictionaryCF
// ---------------------------------------------------------------------------

TEST(HybridTest, BeatsPlainSampleCFInTheHardRegime) {
  // d = 5000 over n = 100000 is E9's hard middle ground where SampleCF's
  // implicit scale-up overshoots by ~4x; the GEE correction must cut it.
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 20, 5000, FrequencySpec::Uniform(),
                          LengthSpec::Full())},
      100000, 21);
  ASSERT_TRUE(table_result.ok());
  auto truth = ComputeTrueCF(
      **table_result, {"cx", {"a"}, true},
      CompressionScheme::Uniform(CompressionType::kDictionaryGlobal));
  ASSERT_TRUE(truth.ok());

  HybridCFOptions options;
  options.base.fraction = 0.01;
  double hybrid_err = 0.0, plain_err = 0.0;
  const int kTrials = 10;
  Random rng(3);
  for (int t = 0; t < kTrials; ++t) {
    Random trial = rng.Fork();
    auto result = HybridDictionaryCF(
        **table_result, {"cx", {"a"}, true},
        CompressionScheme::Uniform(CompressionType::kDictionaryGlobal),
        options, &trial);
    ASSERT_TRUE(result.ok()) << result.status();
    hybrid_err += RatioError(truth->value, result->estimate);
    plain_err += RatioError(truth->value, result->plain.cf.value);
    ASSERT_EQ(result->column_dv_estimates.size(), 1u);
  }
  hybrid_err /= kTrials;
  plain_err /= kTrials;
  EXPECT_GT(plain_err, 2.0);    // SampleCF struggles here (E9)
  EXPECT_LT(hybrid_err, 1.5);   // the DV correction fixes most of it
  EXPECT_LT(hybrid_err, plain_err);
}

TEST(HybridTest, AgreesWithPlainWhenDIsSmall) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 20, 10, FrequencySpec::Uniform(),
                          LengthSpec::Full())},
      20000, 23);
  ASSERT_TRUE(table_result.ok());
  HybridCFOptions options;
  options.base.fraction = 0.05;
  Random rng(5);
  auto result = HybridDictionaryCF(
      **table_result, {"cx", {"a"}, true},
      CompressionScheme::Uniform(CompressionType::kDictionaryGlobal), options,
      &rng);
  ASSERT_TRUE(result.ok());
  // Small d: both see all values; the estimates nearly coincide.
  EXPECT_NEAR(result->estimate, result->plain.cf.value, 0.03);
}

TEST(HybridTest, RejectsNonGlobalSchemes) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 8, 5)}, 100, 1);
  ASSERT_TRUE(table_result.ok());
  HybridCFOptions options;
  Random rng(1);
  EXPECT_TRUE(HybridDictionaryCF(
                  **table_result, {"cx", {"a"}, true},
                  CompressionScheme::Uniform(CompressionType::kDictionaryPage),
                  options, &rng)
                  .status()
                  .IsNotSupported());
}

// ---------------------------------------------------------------------------
// ProfileColumn / ProfileTable
// ---------------------------------------------------------------------------

TEST(ColumnProfileTest, ExactStatisticsOnConstructedColumn) {
  Schema schema =
      std::move(Schema::Make({{"s", CharType(10)}})).ValueOrDie();
  TableBuilder builder(schema);
  for (const char* v : {"aa", "aa", "aa", "bbbb", "cccccc"}) {
    ASSERT_TRUE(builder.Append({Value::Str(v)}).ok());
  }
  auto table = builder.Finish();
  auto profile = ProfileColumn(*table, 0, /*top_k=*/2);
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_EQ(profile->stats.n, 5u);
  EXPECT_EQ(profile->stats.d, 3u);
  EXPECT_EQ(profile->stats.sum_lengths, 2u * 3 + 4 + 6);
  EXPECT_EQ(profile->lengths.min_length, 2u);
  EXPECT_EQ(profile->lengths.max_length, 6u);
  EXPECT_DOUBLE_EQ(profile->lengths.mean_length, 16.0 / 5.0);
  ASSERT_EQ(profile->top_values.size(), 2u);
  EXPECT_EQ(profile->top_values[0].value, "aa");
  EXPECT_EQ(profile->top_values[0].count, 3u);
  // Predictions match the closed forms.
  EXPECT_DOUBLE_EQ(profile->predicted_ns_cf, (16.0 + 5.0) / 50.0);
  EXPECT_DOUBLE_EQ(profile->predicted_dict_cf, 4.0 / 10.0 + 3.0 / 5.0);
  // Histogram covers every row.
  uint64_t total = 0;
  for (uint64_t b : profile->lengths.buckets) total += b;
  EXPECT_EQ(total, 5u);
}

TEST(ColumnProfileTest, IntegerDisplayDecoded) {
  Schema schema =
      std::move(Schema::Make({{"v", Int64Type()}})).ValueOrDie();
  TableBuilder builder(schema);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(builder.Append({Value::Int(1234)}).ok());
  }
  auto table = builder.Finish();
  auto profile = ProfileColumn(*table, 0);
  ASSERT_TRUE(profile.ok());
  ASSERT_FALSE(profile->top_values.empty());
  EXPECT_EQ(profile->top_values[0].value, "1234");
}

TEST(ColumnProfileTest, ProfileTableCoversAllColumns) {
  auto table = MixedWorkload(500);
  auto profiles = ProfileTable(*table);
  ASSERT_TRUE(profiles.ok());
  ASSERT_EQ(profiles->size(), 3u);
  EXPECT_EQ((*profiles)[0].name, "key");
  EXPECT_EQ((*profiles)[0].stats.d, 500u);  // unique keys
  EXPECT_EQ((*profiles)[1].stats.d, 4u);    // status domain
}

TEST(ColumnProfileTest, Validation) {
  auto table = MixedWorkload(10);
  EXPECT_TRUE(ProfileColumn(*table, 99).status().IsOutOfRange());
  EXPECT_FALSE(ProfileColumn(*table, 0, 5, 0).ok());
}

// ---------------------------------------------------------------------------
// Per-column stats (the plumbing RecommendScheme relies on)
// ---------------------------------------------------------------------------

TEST(PerColumnStatsTest, ColumnBytesSumToChunkBytes) {
  auto table = MixedWorkload(3000);
  IndexBuildOptions build;
  build.keep_pages = false;
  auto index = Index::Build(*table, {"cx", {"key"}, true}, build);
  ASSERT_TRUE(index.ok());
  CompressionScheme scheme;
  scheme.per_column = {CompressionType::kDelta,
                       CompressionType::kDictionaryPage,
                       CompressionType::kNullSuppression};
  auto compressed = index->Compress(scheme, build);
  ASSERT_TRUE(compressed.ok()) << compressed.status();
  const CompressedIndexStats& stats = compressed->stats();
  ASSERT_EQ(stats.columns.size(), 3u);
  uint64_t sum = 0;
  for (const auto& col : stats.columns) sum += col.chunk_bytes;
  EXPECT_EQ(sum, stats.chunk_bytes);
  EXPECT_EQ(stats.columns[0].type, CompressionType::kDelta);
  EXPECT_EQ(stats.columns[1].type, CompressionType::kDictionaryPage);
  EXPECT_GT(stats.columns[1].dictionary_entries, 0u);
  EXPECT_EQ(stats.columns[0].aux_bytes, 0u);
}

}  // namespace
}  // namespace cfest
