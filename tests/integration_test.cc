// End-to-end integration tests: the full SampleCF pipeline over synthetic
// TPC-H data, lossless compression of real index builds, and the advisor
// driving what-if estimation across a catalog.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "advisor/what_if.h"
#include "common/stats.h"
#include "datagen/tpch/tables.h"
#include "estimator/analytic_model.h"
#include "estimator/compression_fraction.h"
#include "estimator/evaluation.h"
#include "estimator/sample_cf.h"

namespace cfest {
namespace {

class TpchIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tpch::TpchOptions options;
    options.scale_factor = 0.003;  // lineitem: 18000 rows
    auto result = tpch::GenerateCatalog(options);
    ASSERT_TRUE(result.ok()) << result.status();
    catalog_ = result->release();
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static Catalog* catalog_;
};

Catalog* TpchIntegrationTest::catalog_ = nullptr;

TEST_F(TpchIntegrationTest, SampleCFTracksTruthOnLineitemShipmode) {
  const Table& lineitem = **catalog_->GetTable("lineitem");
  IndexDescriptor desc{"ix_shipmode", {"l_shipmode"}, false};
  for (CompressionType type :
       {CompressionType::kNullSuppression, CompressionType::kDictionaryPage,
        CompressionType::kDictionaryGlobal}) {
    EvaluationOptions options;
    options.fraction = 0.05;
    options.trials = 10;
    Result<EvaluationResult> eval = EvaluateSampleCF(
        lineitem, desc, CompressionScheme::Uniform(type), options);
    ASSERT_TRUE(eval.ok()) << eval.status();
    EXPECT_LT(eval->mean_ratio_error, 1.5) << CompressionTypeName(type);
    EXPECT_LT(eval->truth.value, 1.2) << CompressionTypeName(type);
  }
}

TEST_F(TpchIntegrationTest, NsEstimateAccurateOnWideTextColumns) {
  // Comments are exactly the padded-varchar shape NS targets; Theorem 1
  // promises tight estimates.
  const Table& orders = **catalog_->GetTable("orders");
  IndexDescriptor desc{"ix_comment", {"o_comment"}, false};
  EvaluationOptions options;
  options.fraction = 0.05;
  options.trials = 20;
  Result<EvaluationResult> eval = EvaluateSampleCF(
      orders, desc,
      CompressionScheme::Uniform(CompressionType::kNullSuppression), options);
  ASSERT_TRUE(eval.ok());
  // Comments fill ~2/3 of the declared width on average.
  EXPECT_LT(eval->truth.value, 0.95);
  EXPECT_GT(eval->truth.value, 0.3);
  EXPECT_LT(eval->mean_ratio_error, 1.05);
  EXPECT_LE(eval->estimate_summary.stddev,
            Theorem1StdDevBound(static_cast<uint64_t>(
                eval->mean_sample_rows)) *
                1.10);
}

TEST_F(TpchIntegrationTest, MultiColumnClusteredIndexCompressesLosslessly) {
  const Table& part = **catalog_->GetTable("part");
  IndexDescriptor desc{"cx_part", {"p_brand", "p_container"}, true};
  IndexBuildOptions options;
  options.keep_pages = true;
  Result<Index> index = Index::Build(part, desc, options);
  ASSERT_TRUE(index.ok());
  // Mixed per-column scheme across all 9 columns.
  CompressionScheme scheme;
  scheme.per_column = {
      CompressionType::kRle,              // p_brand (sorted -> runs)
      CompressionType::kDictionaryPage,   // p_container
      CompressionType::kNone,             // p_partkey
      CompressionType::kNullSuppression,  // p_name
      CompressionType::kDictionaryGlobal, // p_mfgr
      CompressionType::kPrefix,           // p_type
      CompressionType::kNullSuppression,  // p_size
      CompressionType::kNullSuppression,  // p_retailprice
      CompressionType::kNullSuppression,  // p_comment
  };
  Result<CompressedIndex> compressed = index->Compress(scheme, options);
  ASSERT_TRUE(compressed.ok()) << compressed.status();
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressed->DecodeAllRows(&decoded).ok());
  ASSERT_EQ(decoded.size(), index->num_rows());
  for (uint64_t i = 0; i < index->num_rows(); ++i) {
    ASSERT_EQ(Slice(decoded[i]), index->row(i)) << "row " << i;
  }
  // And it actually compressed.
  EXPECT_LT(compressed->stats().chunk_bytes + compressed->stats().aux_bytes,
            index->stats().row_data_bytes);
}

TEST_F(TpchIntegrationTest, BlockSamplingComparableOnShuffledData) {
  // TPC-H rows are generated independently, so block sampling sees the same
  // value mix as row sampling and both estimators land close to truth.
  const Table& lineitem = **catalog_->GetTable("lineitem");
  IndexDescriptor desc{"ix", {"l_shipinstruct"}, false};
  auto block = MakeBlockSampler(0);
  EvaluationOptions row_options;
  row_options.fraction = 0.05;
  row_options.trials = 10;
  EvaluationOptions block_options = row_options;
  block_options.sampler = block.get();
  Result<EvaluationResult> row_eval = EvaluateSampleCF(
      lineitem, desc,
      CompressionScheme::Uniform(CompressionType::kNullSuppression),
      row_options);
  Result<EvaluationResult> block_eval = EvaluateSampleCF(
      lineitem, desc,
      CompressionScheme::Uniform(CompressionType::kNullSuppression),
      block_options);
  ASSERT_TRUE(row_eval.ok());
  ASSERT_TRUE(block_eval.ok());
  EXPECT_LT(row_eval->mean_ratio_error, 1.05);
  EXPECT_LT(block_eval->mean_ratio_error, 1.05);
}

TEST_F(TpchIntegrationTest, AdvisorEndToEnd) {
  const Table& lineitem = **catalog_->GetTable("lineitem");
  const Table& orders = **catalog_->GetTable("orders");

  std::vector<CandidateConfiguration> configs;
  auto add = [&](const std::string& table_name, IndexDescriptor desc,
                 CompressionScheme scheme, double benefit) {
    CandidateConfiguration c;
    c.table_name = table_name;
    c.index = std::move(desc);
    c.scheme = std::move(scheme);
    c.benefit = benefit;
    configs.push_back(std::move(c));
  };
  add("lineitem", {"ix_mode", {"l_shipmode"}, false},
      CompressionScheme::Uniform(CompressionType::kNone), 8.0);
  add("lineitem", {"ix_mode", {"l_shipmode"}, false},
      CompressionScheme::Uniform(CompressionType::kDictionaryPage), 7.5);
  add("orders", {"ix_pri", {"o_orderpriority"}, false},
      CompressionScheme::Uniform(CompressionType::kDictionaryPage), 5.0);
  add("orders", {"ix_comment", {"o_comment"}, false},
      CompressionScheme::Uniform(CompressionType::kNullSuppression), 3.0);

  SampleCFOptions options;
  options.fraction = 0.05;
  Random rng(2024);
  std::vector<SizedCandidate> sized;
  for (const auto& config : configs) {
    const Table& table =
        config.table_name == "lineitem" ? lineitem : orders;
    Result<SizedCandidate> s =
        EstimateCandidateSize(table, config, options, &rng);
    ASSERT_TRUE(s.ok()) << s.status();
    sized.push_back(std::move(*s));
  }
  // Compressed variant of the same index must estimate smaller.
  EXPECT_LT(sized[1].estimated_bytes, sized[0].estimated_bytes);

  const uint64_t budget = sized[1].estimated_bytes +
                          sized[2].estimated_bytes +
                          sized[3].estimated_bytes;
  Result<AdvisorRecommendation> rec =
      SelectConfigurations(sized, budget, AdvisorStrategy::kOptimal);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->total_bytes, budget);
  // With the uncompressed ix_mode too large to pair well, the compressed
  // variant plus both orders indexes is optimal.
  EXPECT_EQ(rec->selected.size(), 3u);
  std::set<std::string> chosen;
  for (const auto& c : rec->selected) {
    chosen.insert(c.config.index.name + "/" + c.config.scheme.ToString());
  }
  EXPECT_TRUE(chosen.count("ix_mode/dictionary_page"));
}

TEST_F(TpchIntegrationTest, EfficiencySampleCFTouchesFractionOfRows) {
  // Not a wall-clock test (that is bench_efficiency's job): verify the
  // estimator's work is proportional to the sample, not the table.
  const Table& lineitem = **catalog_->GetTable("lineitem");
  SampleCFOptions options;
  options.fraction = 0.01;
  Random rng(5);
  Result<SampleCFResult> result = SampleCF(
      lineitem, {"ix", {"l_shipmode"}, false},
      CompressionScheme::Uniform(CompressionType::kDictionaryPage), options,
      &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sample_rows, lineitem.num_rows() / 100);
  EXPECT_LT(result->sample_compressed.data_pages, 10u);
}

}  // namespace
}  // namespace cfest
