// Tests for the index substrate: typed comparators, bulk build (sorting,
// clustered vs non-clustered projection, leaf packing), size accounting, and
// compression of index rows.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/comparator.h"
#include "index/index.h"
#include "storage/table.h"

namespace cfest {
namespace {

std::unique_ptr<Table> MakeTable(const std::vector<Row>& rows) {
  Schema schema = std::move(Schema::Make({{"name", CharType(8)},
                                          {"score", Int32Type()},
                                          {"payload", CharType(12)}}))
                      .ValueOrDie();
  TableBuilder builder(schema);
  for (const Row& row : rows) {
    EXPECT_TRUE(builder.Append(row).ok());
  }
  return builder.Finish();
}

std::unique_ptr<Table> ScoresTable() {
  return MakeTable({
      {Value::Str("carol"), Value::Int(30), Value::Str("p1")},
      {Value::Str("alice"), Value::Int(-5), Value::Str("p2")},
      {Value::Str("bob"), Value::Int(100), Value::Str("p3")},
      {Value::Str("alice"), Value::Int(7), Value::Str("p4")},
  });
}

// ---------------------------------------------------------------------------
// Comparator
// ---------------------------------------------------------------------------

TEST(ComparatorTest, StringOrdering) {
  Schema schema =
      std::move(Schema::Make({{"s", CharType(4)}})).ValueOrDie();
  RowCodec codec(schema);
  std::string a, b;
  ASSERT_TRUE(codec.Encode({Value::Str("ab")}, &a).ok());
  ASSERT_TRUE(codec.Encode({Value::Str("b")}, &b).ok());
  RowComparator cmp(&schema, 1);
  EXPECT_LT(cmp.Compare(Slice(a), Slice(b)), 0);
  EXPECT_GT(cmp.Compare(Slice(b), Slice(a)), 0);
  EXPECT_EQ(cmp.Compare(Slice(a), Slice(a)), 0);
}

TEST(ComparatorTest, IntegerOrderingWithNegatives) {
  Schema schema =
      std::move(Schema::Make({{"v", Int32Type()}})).ValueOrDie();
  RowCodec codec(schema);
  auto encode = [&](int64_t v) {
    std::string buf;
    EXPECT_TRUE(codec.Encode({Value::Int(v)}, &buf).ok());
    return buf;
  };
  RowComparator cmp(&schema, 1);
  const std::vector<int64_t> ordered = {-2000000, -1, 0, 1, 255, 256, 2000000};
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    const std::string lo = encode(ordered[i]);
    const std::string hi = encode(ordered[i + 1]);
    EXPECT_LT(cmp.Compare(Slice(lo), Slice(hi)), 0)
        << ordered[i] << " vs " << ordered[i + 1];
  }
}

TEST(ComparatorTest, Int64Extremes) {
  Schema schema =
      std::move(Schema::Make({{"v", Int64Type()}})).ValueOrDie();
  RowCodec codec(schema);
  auto encode = [&](int64_t v) {
    std::string buf;
    EXPECT_TRUE(codec.Encode({Value::Int(v)}, &buf).ok());
    return buf;
  };
  RowComparator cmp(&schema, 1);
  const std::string lo = encode(INT64_MIN);
  const std::string hi = encode(INT64_MAX);
  const std::string zero = encode(0);
  EXPECT_LT(cmp.Compare(Slice(lo), Slice(zero)), 0);
  EXPECT_LT(cmp.Compare(Slice(zero), Slice(hi)), 0);
}

TEST(ComparatorTest, MultiColumnLexicographic) {
  Schema schema = std::move(Schema::Make({{"a", CharType(2)},
                                          {"b", Int32Type()}}))
                      .ValueOrDie();
  RowCodec codec(schema);
  auto encode = [&](const std::string& s, int64_t v) {
    std::string buf;
    EXPECT_TRUE(codec.Encode({Value::Str(s), Value::Int(v)}, &buf).ok());
    return buf;
  };
  RowComparator cmp(&schema, 2);
  EXPECT_LT(cmp.Compare(Slice(encode("a", 9)), Slice(encode("b", 1))), 0);
  EXPECT_LT(cmp.Compare(Slice(encode("a", 1)), Slice(encode("a", 9))), 0);
  // Only the first column is the key if num_key_columns == 1.
  RowComparator cmp1(&schema, 1);
  EXPECT_EQ(cmp1.Compare(Slice(encode("a", 1)), Slice(encode("a", 9))), 0);
}

// ---------------------------------------------------------------------------
// Index build
// ---------------------------------------------------------------------------

TEST(IndexBuildTest, NonClusteredSchemaHasKeyPlusRid) {
  auto table = ScoresTable();
  IndexDescriptor desc{"ix_score", {"score"}, /*clustered=*/false};
  Result<Index> index = Index::Build(*table, desc);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->schema().num_columns(), 2u);
  EXPECT_EQ(index->schema().column(0).name, "score");
  EXPECT_EQ(index->schema().column(1).name, "__rid");
  EXPECT_EQ(index->schema().row_width(), 12u);
  EXPECT_EQ(index->num_rows(), 4u);
}

TEST(IndexBuildTest, ClusteredSchemaReordersKeyFirst) {
  auto table = ScoresTable();
  IndexDescriptor desc{"cx", {"score"}, /*clustered=*/true};
  Result<Index> index = Index::Build(*table, desc);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->schema().num_columns(), 3u);
  EXPECT_EQ(index->schema().column(0).name, "score");
  EXPECT_EQ(index->schema().column(1).name, "name");
  EXPECT_EQ(index->schema().column(2).name, "payload");
  EXPECT_EQ(index->schema().row_width(), table->row_width());
}

TEST(IndexBuildTest, RowsSortedByKey) {
  auto table = ScoresTable();
  IndexDescriptor desc{"ix", {"score"}, false};
  Result<Index> index = Index::Build(*table, desc);
  ASSERT_TRUE(index.ok());
  RowCodec codec(index->schema());
  std::vector<int64_t> scores;
  for (uint64_t i = 0; i < index->num_rows(); ++i) {
    scores.push_back(codec.DecodeCell(index->row(i), 0)->AsInt());
  }
  EXPECT_EQ(scores, (std::vector<int64_t>{-5, 7, 30, 100}));
}

TEST(IndexBuildTest, RidsPointBackToHeapRows) {
  auto table = ScoresTable();
  IndexDescriptor desc{"ix", {"name"}, false};
  Result<Index> index = Index::Build(*table, desc);
  ASSERT_TRUE(index.ok());
  RowCodec codec(index->schema());
  // "alice" rows (heap ids 1 and 3) come first; stable sort keeps heap order.
  EXPECT_EQ(codec.DecodeCell(index->row(0), 1)->AsInt(), 1);
  EXPECT_EQ(codec.DecodeCell(index->row(1), 1)->AsInt(), 3);
  EXPECT_EQ(codec.DecodeCell(index->row(0), 0)->AsString(), "alice");
}

TEST(IndexBuildTest, MultiColumnKeySequenceRespected) {
  auto table = ScoresTable();
  IndexDescriptor desc{"ix", {"name", "score"}, false};
  Result<Index> index = Index::Build(*table, desc);
  ASSERT_TRUE(index.ok());
  RowCodec codec(index->schema());
  // alice rows ordered by score: -5 then 7.
  EXPECT_EQ(codec.DecodeCell(index->row(0), 1)->AsInt(), -5);
  EXPECT_EQ(codec.DecodeCell(index->row(1), 1)->AsInt(), 7);
}

TEST(IndexBuildTest, RejectsBadDescriptors) {
  auto table = ScoresTable();
  EXPECT_FALSE(Index::Build(*table, {"ix", {}, false}).ok());
  EXPECT_FALSE(Index::Build(*table, {"ix", {"nope"}, false}).ok());
  EXPECT_FALSE(Index::Build(*table, {"ix", {"name", "name"}, false}).ok());
}

TEST(IndexBuildTest, EmptyTableStillOwnsOnePage) {
  Schema schema =
      std::move(Schema::Make({{"v", Int32Type()}})).ValueOrDie();
  TableBuilder builder(schema);
  auto table = builder.Finish();
  Result<Index> index = Index::Build(*table, {"ix", {"v"}, false});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->stats().leaf_pages, 1u);
  EXPECT_EQ(index->stats().internal_pages, 0u);
  EXPECT_EQ(index->num_rows(), 0u);
}

TEST(IndexBuildTest, LeafPackingMatchesArithmetic) {
  Schema schema =
      std::move(Schema::Make({{"v", Int64Type()}})).ValueOrDie();
  TableBuilder builder(schema);
  const uint64_t n = 10000;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(builder.Append({Value::Int(static_cast<int64_t>(i))}).ok());
  }
  auto table = builder.Finish();
  IndexBuildOptions options;
  options.page_size = 4096;
  options.keep_pages = false;
  Result<Index> index = Index::Build(*table, {"ix", {"v"}, false}, options);
  ASSERT_TRUE(index.ok());
  // Row: 8 (key) + 8 (rid) = 16 bytes + 4 slot; capacity 4096-32 = 4064.
  const uint64_t per_page = 4064 / 20;  // 203
  const uint64_t expected_leaves = (n + per_page - 1) / per_page;
  EXPECT_EQ(index->stats().leaf_pages, expected_leaves);
  EXPECT_GT(index->stats().internal_pages, 0u);
  EXPECT_EQ(index->stats().row_data_bytes, n * 16u);
}

TEST(IndexBuildTest, StatsBytesConsistentWithPages) {
  auto table = ScoresTable();
  IndexBuildOptions options;
  options.keep_pages = true;
  Result<Index> index = Index::Build(*table, {"ix", {"name"}, true}, options);
  ASSERT_TRUE(index.ok());
  uint64_t used = 0;
  for (const Page& page : index->leaf_pages()) used += page.used_bytes();
  EXPECT_EQ(used, index->stats().leaf_used_bytes);
  EXPECT_EQ(index->leaf_pages().size(), index->stats().leaf_pages);
}

// ---------------------------------------------------------------------------
// Internal page math
// ---------------------------------------------------------------------------

TEST(InternalPageTest, Counts) {
  EXPECT_EQ(InternalPageCount(0, 100), 0u);
  EXPECT_EQ(InternalPageCount(1, 100), 0u);
  EXPECT_EQ(InternalPageCount(2, 100), 1u);
  EXPECT_EQ(InternalPageCount(100, 100), 1u);
  EXPECT_EQ(InternalPageCount(101, 100), 2u + 1u);
  EXPECT_EQ(InternalPageCount(10000, 100), 100u + 1u);
  EXPECT_EQ(InternalPageCount(5, 0), 0u);  // degenerate fanout
}

TEST(InternalPageTest, FanoutReflectsKeyWidth) {
  auto table = ScoresTable();
  Result<Index> narrow = Index::Build(*table, {"ix", {"score"}, false});
  Result<Index> wide = Index::Build(*table, {"ix", {"name", "payload"}, false});
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_GT(narrow->fanout(), wide->fanout());
}

// ---------------------------------------------------------------------------
// Index compression
// ---------------------------------------------------------------------------

TEST(IndexCompressTest, SortedKeysCompressWellUnderRle) {
  Schema schema = std::move(Schema::Make({{"flag", CharType(1)},
                                          {"payload", CharType(16)}}))
                      .ValueOrDie();
  TableBuilder builder(schema);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(builder
                    .Append({Value::Str(i % 2 == 0 ? "A" : "B"),
                             Value::Str("pl" + std::to_string(i % 50))})
                    .ok());
  }
  auto table = builder.Finish();
  IndexBuildOptions options;
  options.keep_pages = false;
  Result<Index> index = Index::Build(*table, {"ix", {"flag"}, false}, options);
  ASSERT_TRUE(index.ok());
  // After sorting, the flag column is two giant runs.
  CompressionScheme rle;
  rle.per_column = {CompressionType::kRle, CompressionType::kNone};
  Result<CompressedIndex> compressed = index->Compress(rle, options);
  ASSERT_TRUE(compressed.ok()) << compressed.status();
  // The flag column compresses to almost nothing; the rid column dominates.
  EXPECT_LT(compressed->stats().chunk_bytes,
            index->stats().row_data_bytes);
}

TEST(IndexCompressTest, CompressedRowsMatchIndexRows) {
  auto table = ScoresTable();
  Result<Index> index = Index::Build(*table, {"ix", {"name"}, true});
  ASSERT_TRUE(index.ok());
  Result<CompressedIndex> compressed = index->Compress(
      CompressionScheme::Uniform(CompressionType::kNullSuppression));
  ASSERT_TRUE(compressed.ok());
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressed->DecodeAllRows(&decoded).ok());
  ASSERT_EQ(decoded.size(), index->num_rows());
  for (uint64_t i = 0; i < index->num_rows(); ++i) {
    EXPECT_EQ(Slice(decoded[i]), index->row(i));
  }
}

}  // namespace
}  // namespace cfest
