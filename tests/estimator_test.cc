// Tests for the estimator core: the Table I analytic models, the SampleCF
// pipeline (Fig. 2), Theorem 1's unbiasedness + variance bound, the
// dictionary-compression regimes of Theorems 2 and 3, distinct-value
// baselines, and the Monte-Carlo harness.

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/table_gen.h"
#include "estimator/analytic_model.h"
#include "estimator/compression_fraction.h"
#include "estimator/distinct_value.h"
#include "estimator/evaluation.h"
#include "estimator/sample_cf.h"

namespace cfest {
namespace {

/// Single char(k) column table from explicit values.
std::unique_ptr<Table> CharTable(const std::vector<std::string>& values,
                                 uint32_t k) {
  Schema schema =
      std::move(Schema::Make({{"a", CharType(k)}})).ValueOrDie();
  TableBuilder builder(schema);
  for (const std::string& v : values) {
    EXPECT_TRUE(builder.Append({Value::Str(v)}).ok());
  }
  return builder.Finish();
}

IndexDescriptor NonClusteredOnA() { return {"ix_a", {"a"}, false}; }
/// Single-column "index on A" exactly as the paper's analysis assumes: the
/// index row is just the column.
IndexDescriptor ClusteredOnA() { return {"cx_a", {"a"}, true}; }

// ---------------------------------------------------------------------------
// AnalyzeColumn / analytic models
// ---------------------------------------------------------------------------

TEST(AnalyzeColumnTest, ExactCounts) {
  auto table = CharTable({"abc", "abc", "x", "", "abcdefghij"}, 10);
  Result<ColumnPopulationStats> stats = AnalyzeColumn(*table, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->n, 5u);
  EXPECT_EQ(stats->d, 4u);
  EXPECT_EQ(stats->sum_lengths, 3u + 3u + 1u + 0u + 10u);
  EXPECT_EQ(stats->k, 10u);
  EXPECT_EQ(stats->length_header, 1u);
  EXPECT_TRUE(AnalyzeColumn(*table, 5).status().IsOutOfRange());
}

TEST(AnalyticModelTest, NsClosedForm) {
  // CF_NS = sum(l_i + 1) / (n k): (4+4+2+1+11) / 50 = 0.44.
  ColumnPopulationStats stats{5, 4, 17, 10, 1};
  EXPECT_DOUBLE_EQ(AnalyticNsCF(stats), 22.0 / 50.0);
  // Degenerate inputs fall back to 1.
  EXPECT_DOUBLE_EQ(AnalyticNsCF({0, 0, 0, 10, 1}), 1.0);
}

TEST(AnalyticModelTest, GlobalDictClosedForm) {
  // CF_DC = p/k + d/n.
  ColumnPopulationStats stats{1000, 50, 0, 20, 1};
  EXPECT_DOUBLE_EQ(AnalyticGlobalDictCF(stats, 4), 4.0 / 20.0 + 50.0 / 1000.0);
}

TEST(AnalyticModelTest, PagedDictClosedForm) {
  ColumnPopulationStats stats{1000, 50, 0, 20, 1};
  // 3-bit pointers, 120 page-dictionary incidences.
  const double cf = AnalyticPagedDictCF(stats, 3.0, 120);
  EXPECT_DOUBLE_EQ(cf, (1000.0 * 3.0 / 8.0 + 20.0 * 120.0) / 20000.0);
}

TEST(AnalyticModelTest, Theorem1Bound) {
  EXPECT_DOUBLE_EQ(Theorem1StdDevBound(1000000), 1.0 / 2000.0);  // Example 1
  EXPECT_DOUBLE_EQ(Theorem1StdDevBound(100), 0.05);
  EXPECT_DOUBLE_EQ(Theorem1StdDevBound(0), 1.0);
}

TEST(AnalyticModelTest, Theorem1ConfidenceInterval) {
  // r = 100 -> sigma bound 0.05; 2 sigmas -> +-0.10.
  ConfidenceInterval ci = Theorem1ConfidenceInterval(0.45, 100, 2.0);
  EXPECT_DOUBLE_EQ(ci.lower, 0.35);
  EXPECT_DOUBLE_EQ(ci.upper, 0.55);
  // Clamped at zero for small estimates.
  ConfidenceInterval clamped = Theorem1ConfidenceInterval(0.03, 100, 2.0);
  EXPECT_DOUBLE_EQ(clamped.lower, 0.0);
  EXPECT_DOUBLE_EQ(clamped.upper, 0.13);
}

TEST(AnalyticModelTest, SampleSizeForHalfWidth) {
  // Inverse of the bound: half width 0.10 at 2 sigmas -> r = 100.
  EXPECT_EQ(SampleSizeForHalfWidth(0.10, 2.0), 100u);
  // Example 1 backwards: +-0.001 at 2 sigmas needs r = 1e6.
  EXPECT_EQ(SampleSizeForHalfWidth(0.001, 2.0), 1000000u);
  EXPECT_EQ(SampleSizeForHalfWidth(0.0), 0u);
  // Round trip: the returned r actually achieves the width.
  const uint64_t r = SampleSizeForHalfWidth(0.013, 2.0);
  EXPECT_LE(2.0 * Theorem1StdDevBound(r), 0.013);
  EXPECT_GT(2.0 * Theorem1StdDevBound(r - 1), 0.013);
}

// The constructive NS compressor must reproduce the analytic closed form on
// the data-bytes metric (modulo per-page chunk framing).
TEST(AnalyticVsConstructiveTest, NsMatchesClosedForm) {
  Random rng(1);
  std::vector<std::string> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(std::string(1 + rng.NextBounded(15), 'a' + i % 26));
  }
  auto table = CharTable(values, 16);
  Result<ColumnPopulationStats> stats = AnalyzeColumn(*table, 0);
  ASSERT_TRUE(stats.ok());
  Result<CompressionFraction> cf = ComputeTrueCF(
      *table, ClusteredOnA(),
      CompressionScheme::Uniform(CompressionType::kNullSuppression));
  ASSERT_TRUE(cf.ok());
  // Framing: 2 bytes per page-chunk on ~90 pages of 80 KB data -> < 0.3%.
  EXPECT_NEAR(cf->value, AnalyticNsCF(*stats), 0.003);
}

TEST(AnalyticVsConstructiveTest, GlobalDictMatchesClosedForm) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 16, 200, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(2, 14))},
      20000, 3);
  ASSERT_TRUE(table_result.ok());
  const Table& table = **table_result;
  Result<ColumnPopulationStats> stats = AnalyzeColumn(table, 0);
  ASSERT_TRUE(stats.ok());
  CompressionOptions options;
  options.global_pointer_bytes = 4;
  Result<CompressionFraction> cf = ComputeTrueCF(
      table, ClusteredOnA(),
      CompressionScheme::Uniform(CompressionType::kDictionaryGlobal,
                                 options));
  ASSERT_TRUE(cf.ok());
  EXPECT_NEAR(cf->value, AnalyticGlobalDictCF(*stats, 4), 0.003);
}

// ---------------------------------------------------------------------------
// MeasureCF metrics
// ---------------------------------------------------------------------------

TEST(MeasureCFTest, MetricsAreConsistent) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 20, 100, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(1, 10))},
      5000, 9);
  ASSERT_TRUE(table_result.ok());
  for (SizeMetric metric :
       {SizeMetric::kDataBytes, SizeMetric::kUsedBytes,
        SizeMetric::kPageBytes}) {
    Result<CompressionFraction> cf = ComputeTrueCF(
        **table_result, ClusteredOnA(),
        CompressionScheme::Uniform(CompressionType::kNullSuppression), metric);
    ASSERT_TRUE(cf.ok());
    EXPECT_GT(cf->value, 0.0) << SizeMetricName(metric);
    EXPECT_LT(cf->value, 1.0) << SizeMetricName(metric);
    EXPECT_EQ(cf->metric, metric);
    EXPECT_GT(cf->compressed_bytes, 0u);
    EXPECT_GT(cf->uncompressed_bytes, cf->compressed_bytes);
  }
}

TEST(MeasureCFTest, NoneCompressionHasCFNearOne) {
  auto table = CharTable(std::vector<std::string>(500, "full-width-12"), 13);
  Result<CompressionFraction> cf =
      ComputeTrueCF(*table, ClusteredOnA(),
                    CompressionScheme::Uniform(CompressionType::kNone));
  ASSERT_TRUE(cf.ok());
  EXPECT_NEAR(cf->value, 1.0, 0.01);  // only chunk framing above 1.0 * data
}

// ---------------------------------------------------------------------------
// SampleCF pipeline
// ---------------------------------------------------------------------------

TEST(SampleCFTest, RunsAndReportsSampleSize) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 20, 50, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(1, 18))},
      10000, 21);
  ASSERT_TRUE(table_result.ok());
  SampleCFOptions options;
  options.fraction = 0.05;
  Random rng(77);
  Result<SampleCFResult> result =
      SampleCF(**table_result, ClusteredOnA(),
               CompressionScheme::Uniform(CompressionType::kNullSuppression),
               options, &rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->sample_rows, 500u);
  EXPECT_GT(result->cf.value, 0.0);
  EXPECT_LT(result->cf.value, 1.0);
  EXPECT_EQ(result->sample_uncompressed.row_count, 500u);
  EXPECT_EQ(result->sample_compressed.row_count, 500u);
}

TEST(SampleCFTest, DeterministicGivenRngState) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 12, 30)}, 2000, 5);
  ASSERT_TRUE(table_result.ok());
  SampleCFOptions options;
  options.fraction = 0.1;
  Random rng1(123), rng2(123);
  auto a = SampleCF(**table_result, NonClusteredOnA(),
                    CompressionScheme::Uniform(CompressionType::kDictionaryPage),
                    options, &rng1);
  auto b = SampleCF(**table_result, NonClusteredOnA(),
                    CompressionScheme::Uniform(CompressionType::kDictionaryPage),
                    options, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->cf.value, b->cf.value);
}

TEST(SampleCFTest, HonorsCustomSampler) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 12, 30)}, 2000, 5);
  ASSERT_TRUE(table_result.ok());
  auto block_sampler = MakeBlockSampler(100);
  SampleCFOptions options;
  options.fraction = 0.1;
  options.sampler = block_sampler.get();
  Random rng(9);
  auto result = SampleCF(
      **table_result, NonClusteredOnA(),
      CompressionScheme::Uniform(CompressionType::kNullSuppression), options,
      &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sample_rows % 100, 0u);  // whole blocks
}

TEST(SampleCFTest, PropagatesInvalidFraction) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 12, 30)}, 100, 5);
  ASSERT_TRUE(table_result.ok());
  SampleCFOptions options;
  options.fraction = 0.0;
  Random rng(1);
  EXPECT_FALSE(SampleCF(**table_result, NonClusteredOnA(),
                        CompressionScheme::Uniform(CompressionType::kNone),
                        options, &rng)
                   .ok());
}

// ---------------------------------------------------------------------------
// Theorem 1: CF'_NS is unbiased with stddev <= 1/(2 sqrt(r))
// ---------------------------------------------------------------------------

class Theorem1Test : public ::testing::TestWithParam<LengthSpec> {};

TEST_P(Theorem1Test, UnbiasedAndWithinVarianceBound) {
  const uint32_t k = 20;
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", k, 2000, FrequencySpec::Uniform(), GetParam())},
      20000, 31);
  ASSERT_TRUE(table_result.ok());
  EvaluationOptions options;
  options.fraction = 0.02;  // r = 400
  options.trials = 300;
  options.seed = 17;
  Result<EvaluationResult> eval = EvaluateSampleCF(
      **table_result, ClusteredOnA(),
      CompressionScheme::Uniform(CompressionType::kNullSuppression), options);
  ASSERT_TRUE(eval.ok()) << eval.status();

  const double bound = Theorem1StdDevBound(400);
  // Measured spread honours the bound (chunk framing adds < 1% slack).
  EXPECT_LE(eval->estimate_summary.stddev, bound * 1.05);
  // Unbiased: the mean of 300 trials lies within 4 standard errors.
  const double stderr_bound = bound / std::sqrt(300.0);
  EXPECT_NEAR(eval->bias, 0.0, 4.0 * stderr_bound + 0.003);
  EXPECT_DOUBLE_EQ(eval->theorem1_bound, bound);
}

INSTANTIATE_TEST_SUITE_P(
    LengthDistributions, Theorem1Test,
    ::testing::Values(LengthSpec::Uniform(1, 20), LengthSpec::Constant(5),
                      LengthSpec::Bimodal(1, 20), LengthSpec::Full()),
    [](const auto& info) {
      switch (info.param.kind) {
        case LengthSpec::Kind::kConstant:
          return std::string("constant");
        case LengthSpec::Kind::kUniform:
          return std::string("uniform");
        case LengthSpec::Kind::kBimodal:
          return std::string("bimodal");
        case LengthSpec::Kind::kFull:
          return std::string("full");
      }
      return std::string("other");
    });

// ---------------------------------------------------------------------------
// Theorems 2 and 3: dictionary compression regimes
// ---------------------------------------------------------------------------

TEST(Theorem2Test, SmallDRatioErrorShrinksTowardOneAsNGrows) {
  // Theorem 2: with d fixed (d = o(n)) and a constant sampling fraction, the
  // p/k term dominates as n grows, so the expected ratio error tends to 1.
  // The sample still overstates d'/r relative to d/n, which is why the error
  // is visible at small n and vanishes as n grows.
  auto run = [&](uint64_t n) {
    auto table_result = GenerateTable(
        {ColumnSpec::String("a", 20, 20, FrequencySpec::Uniform(),
                            LengthSpec::Full())},
        n, 41);
    EXPECT_TRUE(table_result.ok());
    EvaluationOptions options;
    options.fraction = 0.05;
    options.trials = 20;
    Result<EvaluationResult> eval = EvaluateSampleCF(
        **table_result, ClusteredOnA(),
        CompressionScheme::Uniform(CompressionType::kDictionaryGlobal),
        options);
    EXPECT_TRUE(eval.ok());
    return eval->mean_ratio_error;
  };
  const double err_small_n = run(5000);
  const double err_large_n = run(50000);
  EXPECT_LT(err_large_n, err_small_n);
  EXPECT_LT(err_large_n, 1.06);
  EXPECT_GE(err_large_n, 1.0);
}

TEST(Theorem3Test, LargeDYieldsBoundedConstantRatioError) {
  // d = n/2: the sample's distinct fraction is also Theta(1), so the ratio
  // error is bounded by a constant (CF'(p/k + d'/r) vs CF(p/k + d/n)).
  const uint64_t n = 20000;
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 20, n / 2, FrequencySpec::Uniform(),
                          LengthSpec::Full())},
      n, 43);
  ASSERT_TRUE(table_result.ok());
  EvaluationOptions options;
  options.fraction = 0.05;
  options.trials = 30;
  Result<EvaluationResult> eval = EvaluateSampleCF(
      **table_result, ClusteredOnA(),
      CompressionScheme::Uniform(CompressionType::kDictionaryGlobal), options);
  ASSERT_TRUE(eval.ok());
  // The estimator is biased here (Table II) but the error stays bounded:
  // worst case for d = n/2, f = 5% is well under 2x.
  EXPECT_GT(eval->mean_ratio_error, 1.0);
  EXPECT_LT(eval->mean_ratio_error, 2.0);
}

TEST(DictionaryBiasTest, SampleCFUnderestimatesDictionarySize) {
  // Table II: for dictionary compression SampleCF is biased — the sample
  // sees d'/r <= expected d/n ... actually d'/r overestimates d/n for small
  // d but underestimates for d close to n. Verify bias is nonzero and in the
  // documented direction for the d = n case (every value distinct).
  const uint64_t n = 10000;
  auto table_result = GenerateTable(
      {ColumnSpec::Integer("a", 0)}, n, 47);
  ASSERT_TRUE(table_result.ok());
  EvaluationOptions options;
  options.fraction = 0.02;
  options.trials = 20;
  Result<EvaluationResult> eval = EvaluateSampleCF(
      **table_result, NonClusteredOnA(),
      CompressionScheme::Uniform(CompressionType::kDictionaryGlobal), options);
  ASSERT_TRUE(eval.ok());
  // With all values distinct, a WR sample still sees d'/r near 1, so CF' is
  // close to CF; the residual bias comes from WR collisions. It must be
  // negative (underestimate) and small.
  EXPECT_LT(eval->bias, 0.0);
  EXPECT_GT(eval->bias, -0.05);
}

// ---------------------------------------------------------------------------
// Distinct-value estimators
// ---------------------------------------------------------------------------

SampleFrequencyProfile ProfileFromCounts(
    const std::vector<uint64_t>& value_counts) {
  SampleFrequencyProfile profile;
  for (uint64_t c : value_counts) {
    profile.sample_rows += c;
    profile.freq_counts[c]++;
    profile.distinct_in_sample++;
  }
  return profile;
}

TEST(DvEstimatorTest, ProfileFromSampleTable) {
  auto table = CharTable({"a", "a", "b", "c", "c", "c"}, 4);
  Result<SampleFrequencyProfile> profile = BuildFrequencyProfile(*table, 0);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->sample_rows, 6u);
  EXPECT_EQ(profile->distinct_in_sample, 3u);
  EXPECT_EQ(profile->f(1), 1u);  // "b"
  EXPECT_EQ(profile->f(2), 1u);  // "a"
  EXPECT_EQ(profile->f(3), 1u);  // "c"
  EXPECT_EQ(profile->f(4), 0u);
  EXPECT_TRUE(BuildFrequencyProfile(*table, 3).status().IsOutOfRange());
}

TEST(DvEstimatorTest, NaiveAndScaleUp) {
  SampleFrequencyProfile profile = ProfileFromCounts({1, 1, 2, 4});  // r=8 d'=4
  EXPECT_DOUBLE_EQ(EstimateDistinct(DvEstimator::kNaive, profile, 800), 4.0);
  EXPECT_DOUBLE_EQ(EstimateDistinct(DvEstimator::kScaleUp, profile, 800),
                   4.0 * 100.0);
}

TEST(DvEstimatorTest, Chao84Formula) {
  // f1 = 2, f2 = 1 -> d' + f1^2/(2 f2) = 4 + 2.
  SampleFrequencyProfile profile = ProfileFromCounts({1, 1, 2, 2, 3});
  // d'=5, f1=2, f2=2: 5 + 4/4 = 6.
  EXPECT_DOUBLE_EQ(EstimateDistinct(DvEstimator::kChao84, profile, 1000), 6.0);
}

TEST(DvEstimatorTest, GeeFormula) {
  // GEE = sqrt(n/r) f1 + sum_{j>=2} f_j.
  SampleFrequencyProfile profile = ProfileFromCounts({1, 1, 2, 5});  // r=9
  const double expected = std::sqrt(900.0 / 9.0) * 2.0 + 2.0;
  EXPECT_DOUBLE_EQ(EstimateDistinct(DvEstimator::kGee, profile, 900),
                   expected);
}

TEST(DvEstimatorTest, ClampedToValidRange) {
  SampleFrequencyProfile all_singletons = ProfileFromCounts({1, 1, 1, 1});
  // Chao84 with f2 = 0 falls back to d' + f1(f1-1)/2 = 10 > n = 6 -> clamp.
  EXPECT_DOUBLE_EQ(EstimateDistinct(DvEstimator::kChao84, all_singletons, 6),
                   6.0);
  // Estimates never fall below d'.
  for (DvEstimator est : AllDvEstimators()) {
    EXPECT_GE(EstimateDistinct(est, all_singletons, 1000), 4.0)
        << DvEstimatorName(est);
  }
}

TEST(DvEstimatorTest, ShlosserReasonableOnUniformData) {
  // Uniform data, d = 100, n = 10000, 5% sample: Shlosser should land within
  // a factor of 2 of the truth.
  auto table_result =
      GenerateTable({ColumnSpec::Integer("a", 100)}, 10000, 53);
  ASSERT_TRUE(table_result.ok());
  auto sampler = MakeUniformWithReplacementSampler();
  Random rng(3);
  auto sample = sampler->Sample(**table_result, 0.05, &rng);
  ASSERT_TRUE(sample.ok());
  Result<SampleFrequencyProfile> profile = BuildFrequencyProfile(**sample, 0);
  ASSERT_TRUE(profile.ok());
  const double est =
      EstimateDistinct(DvEstimator::kShlosser, *profile, 10000);
  EXPECT_GT(est, 50.0);
  EXPECT_LT(est, 200.0);
}

TEST(DvEstimatorTest, DictCfFromEstimate) {
  EXPECT_DOUBLE_EQ(DictCFFromDvEstimate(100.0, 1000, 4, 20),
                   0.2 + 0.1);
  EXPECT_DOUBLE_EQ(DictCFFromDvEstimate(100.0, 0, 4, 20), 1.0);
}

TEST(DvEstimatorTest, NamesAreUnique) {
  std::set<std::string> names;
  for (DvEstimator est : AllDvEstimators()) {
    EXPECT_TRUE(names.insert(DvEstimatorName(est)).second);
  }
  EXPECT_EQ(names.size(), 5u);
}

// ---------------------------------------------------------------------------
// Evaluation harness
// ---------------------------------------------------------------------------

TEST(EvaluationTest, FieldsPopulatedAndInternallyConsistent) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 16, 40, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(1, 12))},
      4000, 59);
  ASSERT_TRUE(table_result.ok());
  EvaluationOptions options;
  options.fraction = 0.05;
  options.trials = 25;
  Result<EvaluationResult> eval = EvaluateSampleCF(
      **table_result, ClusteredOnA(),
      CompressionScheme::Uniform(CompressionType::kNullSuppression), options);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->estimates.size(), 25u);
  EXPECT_EQ(eval->estimate_summary.count, 25u);
  EXPECT_GE(eval->mean_ratio_error, 1.0);
  EXPECT_GE(eval->max_ratio_error, eval->mean_ratio_error);
  EXPECT_NEAR(eval->bias, eval->estimate_summary.mean - eval->truth.value,
              1e-12);
  EXPECT_NEAR(eval->mean_sample_rows, 200.0, 0.5);
  EXPECT_TRUE(eval->truth.value > 0.0 && eval->truth.value <= 1.1);
}

TEST(EvaluationTest, RejectsZeroTrials) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 16, 40)}, 100, 1);
  ASSERT_TRUE(table_result.ok());
  EvaluationOptions options;
  options.trials = 0;
  EXPECT_FALSE(EvaluateSampleCF(
                   **table_result, ClusteredOnA(),
                   CompressionScheme::Uniform(CompressionType::kNone), options)
                   .ok());
}

TEST(EvaluationTest, DeterministicInSeed) {
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 16, 40)}, 1000, 2);
  ASSERT_TRUE(table_result.ok());
  EvaluationOptions options;
  options.fraction = 0.1;
  options.trials = 5;
  options.seed = 1234;
  auto a = EvaluateSampleCF(
      **table_result, ClusteredOnA(),
      CompressionScheme::Uniform(CompressionType::kNullSuppression), options);
  auto b = EvaluateSampleCF(
      **table_result, ClusteredOnA(),
      CompressionScheme::Uniform(CompressionType::kNullSuppression), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->estimates, b->estimates);
}

}  // namespace
}  // namespace cfest
