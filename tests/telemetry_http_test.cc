// Tests for the embedded telemetry endpoint (server/telemetry_http.h):
// lifecycle (ephemeral-port start, idempotent stop, restart), routing
// (/healthz, /metrics Prometheus text, /metrics.json, 404, 405), and that
// scraped payloads reflect live registry counters — including labeled
// children — without the server caching anything between requests.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "server/telemetry_http.h"

namespace cfest {
namespace {

/// Blocking one-shot HTTP client: connects to 127.0.0.1:`port`, sends the
/// request verbatim, and returns everything the server wrote until it
/// closed the connection.
std::string HttpRoundTrip(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0) << std::strerror(errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << std::strerror(errno);
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return HttpRoundTrip(port, "GET " + path +
                                 " HTTP/1.1\r\nHost: localhost\r\n"
                                 "Connection: close\r\n\r\n");
}

std::string Body(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(TelemetryHttpTest, StartsOnEphemeralPortAndStops) {
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);
  // A second Start while running must refuse, not rebind.
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  server.Stop();  // idempotent
  // And the server restarts cleanly after a stop.
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.running());
  server.Stop();
}

TEST(TelemetryHttpTest, HealthzRespondsOk) {
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Get(server.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_EQ(Body(response), "ok\n");
  server.Stop();
}

TEST(TelemetryHttpTest, UnknownRouteIs404AndNonGetIs405) {
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(Get(server.port(), "/nope").find("404 Not Found"),
            std::string::npos);
  const std::string post = HttpRoundTrip(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos) << post;
  server.Stop();
}

#ifndef CFEST_METRICS_DISABLED

TEST(TelemetryHttpTest, MetricsRouteServesLivePrometheusText) {
  metrics::Counter plain;
  metrics::Counter labeled;
  auto plain_reg = metrics::MetricRegistry::Global().RegisterCounters(
      {{"cfest.test.http_scrape", &plain}});
  auto labeled_reg = metrics::MetricRegistry::Global().RegisterCounters(
      {{"table", "scrape_t"}}, {{"cfest.test.http_scrape", &labeled}});
  plain.Add(5);
  labeled.Add(7);

  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Get(server.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = Body(response);
  // Aggregate = 5 + 7, labeled child listed with its label set.
  EXPECT_NE(body.find("cfest_test_http_scrape 12"), std::string::npos)
      << body;
  EXPECT_NE(body.find("cfest_test_http_scrape{table=\"scrape_t\"} 7"),
            std::string::npos)
      << body;

  // The server renders fresh per request: a later increment shows up in
  // the next scrape without a restart.
  plain.Add(100);
  EXPECT_NE(Body(Get(server.port(), "/metrics"))
                .find("cfest_test_http_scrape 112"),
            std::string::npos);
  server.Stop();
}

TEST(TelemetryHttpTest, MetricsJsonRouteServesSnapshotJson) {
  metrics::Counter counter;
  auto reg = metrics::MetricRegistry::Global().RegisterCounters(
      {{"table", "json_t"}}, {{"cfest.test.http_json", &counter}});
  counter.Add(3);

  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Get(server.port(), "/metrics.json");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"labeled_counters\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"cfest.test.http_json\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"json_t\""), std::string::npos) << body;
  server.Stop();
}

#endif  // CFEST_METRICS_DISABLED

}  // namespace
}  // namespace cfest
