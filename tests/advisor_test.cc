// Tests for the physical-design advisor: what-if sizing via SampleCF,
// storage-bounded configuration selection (greedy / optimal / lazy), and
// the lazy interval-driven branch-and-bound pass over the engine and the
// catalog service.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "advisor/search.h"
#include "advisor/what_if.h"
#include "common/random.h"
#include "datagen/table_gen.h"
#include "storage/catalog.h"

namespace cfest {
namespace {

std::unique_ptr<Table> WorkloadTable(uint64_t rows = 20000,
                                     uint64_t seed = 7) {
  auto table = GenerateTable(
      {ColumnSpec::String("status", 12, 6, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(4, 10)),
       ColumnSpec::String("city", 24, 50, FrequencySpec::Zipf(1.0),
                          LengthSpec::Uniform(4, 20)),
       ColumnSpec::Integer("amount", 0)},
      rows, seed);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Uncompressed size arithmetic
// ---------------------------------------------------------------------------

TEST(WhatIfTest, UncompressedEstimateMatchesRealBuild) {
  auto table = WorkloadTable();
  IndexDescriptor desc{"ix_city", {"city"}, false};
  Result<uint64_t> estimate = EstimateUncompressedIndexBytes(*table, desc);
  ASSERT_TRUE(estimate.ok());
  IndexBuildOptions options;
  options.keep_pages = false;
  Result<Index> index = Index::Build(*table, desc, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*estimate, index->stats().page_bytes());
}

TEST(WhatIfTest, ClusteredEstimateMatchesRealBuild) {
  auto table = WorkloadTable();
  IndexDescriptor desc{"cx", {"status"}, true};
  Result<uint64_t> estimate = EstimateUncompressedIndexBytes(*table, desc);
  ASSERT_TRUE(estimate.ok());
  IndexBuildOptions options;
  options.keep_pages = false;
  Result<Index> index = Index::Build(*table, desc, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*estimate, index->stats().page_bytes());
}

TEST(WhatIfTest, RejectsBadIndexes) {
  auto table = WorkloadTable();
  EXPECT_FALSE(
      EstimateUncompressedIndexBytes(*table, {"x", {"missing"}, false}).ok());
  EXPECT_FALSE(EstimateUncompressedIndexBytes(
                   *table, {"x", {"city", "city"}, false})
                   .ok());
}

// ---------------------------------------------------------------------------
// Candidate sizing
// ---------------------------------------------------------------------------

TEST(WhatIfTest, UncompressedCandidateSkipsSampling) {
  auto table = WorkloadTable();
  CandidateConfiguration candidate;
  candidate.table_name = "t";
  candidate.index = {"ix", {"city"}, false};
  candidate.scheme = CompressionScheme::Uniform(CompressionType::kNone);
  candidate.benefit = 10.0;
  SampleCFOptions options;
  options.fraction = 0.05;
  Random rng(1);
  Result<SizedCandidate> sized =
      EstimateCandidateSize(*table, candidate, options, &rng);
  ASSERT_TRUE(sized.ok());
  EXPECT_DOUBLE_EQ(sized->estimated_cf, 1.0);
  EXPECT_EQ(sized->estimated_bytes, sized->uncompressed_bytes);
}

TEST(WhatIfTest, CompressedCandidateShrinks) {
  auto table = WorkloadTable();
  CandidateConfiguration candidate;
  candidate.table_name = "t";
  candidate.index = {"ix", {"status"}, false};
  candidate.scheme =
      CompressionScheme::Uniform(CompressionType::kNullSuppression);
  candidate.benefit = 10.0;
  SampleCFOptions options;
  options.fraction = 0.05;
  Random rng(2);
  Result<SizedCandidate> sized =
      EstimateCandidateSize(*table, candidate, options, &rng);
  ASSERT_TRUE(sized.ok());
  EXPECT_LT(sized->estimated_cf, 1.0);
  EXPECT_LT(sized->estimated_bytes, sized->uncompressed_bytes);
  EXPECT_GT(sized->estimated_bytes, 0u);
}

TEST(WhatIfTest, EstimateTracksTrueCompressedSize) {
  auto table = WorkloadTable();
  CandidateConfiguration candidate;
  candidate.table_name = "t";
  candidate.index = {"ix", {"city"}, false};
  candidate.scheme =
      CompressionScheme::Uniform(CompressionType::kDictionaryPage);
  SampleCFOptions options;
  options.fraction = 0.1;
  Random rng(3);
  Result<SizedCandidate> sized =
      EstimateCandidateSize(*table, candidate, options, &rng);
  ASSERT_TRUE(sized.ok());
  // Ground truth.
  IndexBuildOptions build;
  build.keep_pages = false;
  Result<Index> index = Index::Build(*table, candidate.index, build);
  ASSERT_TRUE(index.ok());
  Result<CompressedIndex> compressed =
      index->Compress(candidate.scheme, build);
  ASSERT_TRUE(compressed.ok());
  const double truth =
      static_cast<double>(compressed->stats().page_bytes());
  const double est = static_cast<double>(sized->estimated_bytes);
  EXPECT_LT(std::max(truth / est, est / truth), 1.5)
      << "estimate " << est << " vs truth " << truth;
}

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

SizedCandidate MakeCandidate(const std::string& name, double benefit,
                             uint64_t bytes) {
  SizedCandidate c;
  c.config.table_name = "t";
  c.config.index.name = name;
  c.config.benefit = benefit;
  c.estimated_bytes = bytes;
  c.uncompressed_bytes = bytes;
  return c;
}

SizedCandidate MakeTableCandidate(const std::string& table,
                                  const std::string& name, double benefit,
                                  uint64_t bytes) {
  SizedCandidate c = MakeCandidate(name, benefit, bytes);
  c.config.table_name = table;
  return c;
}

std::vector<std::string> SelectedNames(const AdvisorRecommendation& rec) {
  std::vector<std::string> names;
  for (const SizedCandidate& c : rec.selected) {
    names.push_back(c.config.table_name + "/" + c.config.index.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

TEST(AdvisorTest, GreedyRespectsBudgetAndUniqueness) {
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", 10.0, 100),
      MakeCandidate("a", 9.0, 40),  // same index, compressed variant
      MakeCandidate("b", 5.0, 50),
      MakeCandidate("c", 1.0, 500),
  };
  Result<AdvisorRecommendation> rec = SelectConfigurations(candidates, 100);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->total_bytes, 100u);
  // Greedy by density picks a@40 (0.225/b) then b@50.
  EXPECT_EQ(rec->selected.size(), 2u);
  EXPECT_DOUBLE_EQ(rec->total_benefit, 14.0);
  std::set<std::string> names;
  for (const auto& c : rec->selected) names.insert(c.config.index.name);
  EXPECT_EQ(names.size(), rec->selected.size());
}

TEST(AdvisorTest, OptimalBeatsGreedyOnAdversarialInstance) {
  // Classic knapsack trap: greedy density takes the small dense item and
  // misses the pairing that fills the budget.
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", 6.0, 50),   // density 0.12
      MakeCandidate("b", 5.0, 60),   // density 0.083
      MakeCandidate("c", 5.0, 60),   // density 0.083
  };
  Result<AdvisorRecommendation> greedy =
      SelectConfigurations(candidates, 120, AdvisorStrategy::kGreedy);
  Result<AdvisorRecommendation> optimal =
      SelectConfigurations(candidates, 120, AdvisorStrategy::kOptimal);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(optimal.ok());
  EXPECT_DOUBLE_EQ(greedy->total_benefit, 11.0);   // a + one of b/c
  EXPECT_DOUBLE_EQ(optimal->total_benefit, 11.0);  // same here...
  // ...but shrink the budget so only the pair b+c fits:
  Result<AdvisorRecommendation> greedy2 =
      SelectConfigurations(candidates, 60, AdvisorStrategy::kGreedy);
  Result<AdvisorRecommendation> optimal2 =
      SelectConfigurations(candidates, 60, AdvisorStrategy::kOptimal);
  ASSERT_TRUE(greedy2.ok());
  ASSERT_TRUE(optimal2.ok());
  EXPECT_GE(optimal2->total_benefit, greedy2->total_benefit);
}

TEST(AdvisorTest, OptimalIsActuallyOptimalOnSmallInstance) {
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", 10.0, 60), MakeCandidate("b", 9.0, 50),
      MakeCandidate("c", 8.0, 50),  MakeCandidate("d", 2.0, 10),
  };
  // Budget 100: best is b + c = 17 (a+d = 12, a alone = 10).
  Result<AdvisorRecommendation> rec =
      SelectConfigurations(candidates, 100, AdvisorStrategy::kOptimal);
  ASSERT_TRUE(rec.ok());
  EXPECT_DOUBLE_EQ(rec->total_benefit, 17.0);
  EXPECT_EQ(rec->total_bytes, 100u);
}

TEST(AdvisorTest, ZeroBenefitCandidatesIgnored) {
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", 0.0, 10),
      MakeCandidate("b", -5.0, 10),
  };
  Result<AdvisorRecommendation> rec = SelectConfigurations(candidates, 1000);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->selected.empty());
  EXPECT_EQ(rec->total_bytes, 0u);
}

TEST(AdvisorTest, EmptyBudgetSelectsNothing) {
  std::vector<SizedCandidate> candidates = {MakeCandidate("a", 10.0, 10)};
  Result<AdvisorRecommendation> rec = SelectConfigurations(candidates, 5);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->selected.empty());
}

// Regression: equal-density candidates must select in a deterministic,
// input-permutation-invariant order (pre-fix, std::sort with a strict `>`
// on density left the order unspecified for ties).
TEST(AdvisorTest, TieBreakIsDeterministicAcrossInputPermutations) {
  // 40 candidates of identical density, scrambled input order; the bound
  // admits exactly 20. The tie-break (candidate key) must pick the 20
  // lexicographically smallest keys regardless of input order.
  std::vector<SizedCandidate> scrambled;
  for (int i = 0; i < 40; ++i) {
    const int scrambled_i = (i * 17) % 40;  // 17 is coprime to 40
    char name[8];
    std::snprintf(name, sizeof(name), "ix%02d", scrambled_i);
    scrambled.push_back(MakeCandidate(name, 2.0, 10));
  }
  Result<AdvisorRecommendation> rec = SelectConfigurations(scrambled, 200);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->selected.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    char expected[8];
    std::snprintf(expected, sizeof(expected), "ix%02d", i);
    EXPECT_EQ(rec->selected[i].config.index.name, expected)
        << "slot " << i;
  }
  // A different permutation of the same candidates selects the same set.
  std::vector<SizedCandidate> reversed(scrambled.rbegin(), scrambled.rend());
  Result<AdvisorRecommendation> rec2 = SelectConfigurations(reversed, 200);
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(SelectedNames(*rec), SelectedNames(*rec2));
}

// Regression: table "a.b" + index "c" and table "a" + index "b.c" are
// distinct configurations; the "."-joined key conflated them and the
// at-most-one-per-index rule wrongly dropped one.
TEST(AdvisorTest, DottedNamesDoNotCollideAcrossTables) {
  std::vector<SizedCandidate> candidates = {
      MakeTableCandidate("a.b", "c", 5.0, 10),
      MakeTableCandidate("a", "b.c", 4.0, 10),
  };
  Result<AdvisorRecommendation> rec = SelectConfigurations(candidates, 1000);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->selected.size(), 2u);
  EXPECT_DOUBLE_EQ(rec->total_benefit, 9.0);
  // Same through the exact search.
  Result<AdvisorRecommendation> optimal =
      SelectConfigurations(candidates, 1000, AdvisorStrategy::kOptimal);
  ASSERT_TRUE(optimal.ok());
  EXPECT_EQ(optimal->selected.size(), 2u);
  EXPECT_DOUBLE_EQ(optimal->total_benefit, 9.0);
}

TEST(AdvisorTest, OptimalRejectsHugeInstances) {
  std::vector<SizedCandidate> candidates;
  for (int i = 0; i < 30; ++i) {
    candidates.push_back(MakeCandidate("ix" + std::to_string(i), 1.0, 10));
  }
  EXPECT_FALSE(
      SelectConfigurations(candidates, 100, AdvisorStrategy::kOptimal).ok());
  EXPECT_TRUE(
      SelectConfigurations(candidates, 100, AdvisorStrategy::kGreedy).ok());
}

TEST(AdvisorTest, LazyHasNoCandidateCap) {
  // 30 distinct candidates reject kOptimal (above); kLazy must solve them
  // exactly: all 30 fit under a large bound.
  std::vector<SizedCandidate> candidates;
  for (int i = 0; i < 30; ++i) {
    candidates.push_back(MakeCandidate("ix" + std::to_string(i), 1.0, 10));
  }
  Result<AdvisorRecommendation> rec =
      SelectConfigurations(candidates, 1000, AdvisorStrategy::kLazy);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->selected.size(), 30u);
  EXPECT_DOUBLE_EQ(rec->total_benefit, 30.0);
}

TEST(AdvisorTest, ZeroBoundSelectsNothingOnEveryStrategy) {
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", 10.0, 10), MakeCandidate("b", 5.0, 1)};
  for (AdvisorStrategy strategy :
       {AdvisorStrategy::kGreedy, AdvisorStrategy::kOptimal,
        AdvisorStrategy::kLazy}) {
    Result<AdvisorRecommendation> rec =
        SelectConfigurations(candidates, 0, strategy);
    ASSERT_TRUE(rec.ok());
    EXPECT_TRUE(rec->selected.empty());
    EXPECT_EQ(rec->total_bytes, 0u);
    EXPECT_DOUBLE_EQ(rec->total_benefit, 0.0);
  }
  // A tiny bound admits only the one-byte candidate.
  for (AdvisorStrategy strategy :
       {AdvisorStrategy::kGreedy, AdvisorStrategy::kOptimal,
        AdvisorStrategy::kLazy}) {
    Result<AdvisorRecommendation> rec =
        SelectConfigurations(candidates, 1, strategy);
    ASSERT_TRUE(rec.ok());
    ASSERT_EQ(rec->selected.size(), 1u);
    EXPECT_EQ(rec->selected[0].config.index.name, "b");
  }
}

TEST(AdvisorTest, AllNegativeBenefitsSelectNothingOnEveryStrategy) {
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", -1.0, 10), MakeCandidate("b", -0.5, 10),
      MakeCandidate("c", -100.0, 1)};
  for (AdvisorStrategy strategy :
       {AdvisorStrategy::kGreedy, AdvisorStrategy::kOptimal,
        AdvisorStrategy::kLazy}) {
    Result<AdvisorRecommendation> rec =
        SelectConfigurations(candidates, 1000, strategy);
    ASSERT_TRUE(rec.ok());
    EXPECT_TRUE(rec->selected.empty());
    EXPECT_DOUBLE_EQ(rec->total_benefit, 0.0);
  }
}

TEST(AdvisorTest, OrderingDropsExactDuplicatesOnly) {
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", 10.0, 50),
      MakeCandidate("a", 10.0, 50),  // exact duplicate: dropped
      MakeCandidate("a", 9.0, 50),   // same key, different benefit: kept
      MakeCandidate("b", 5.0, 50),
  };
  const std::vector<size_t> order = OrderCandidatesForSelection(candidates);
  ASSERT_EQ(order.size(), 3u);
  // Density order: a@10 (0.2), a@9 (0.18), b@5 (0.1); the duplicate's
  // first instance survives.
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
  // Selection still honors at-most-one-per-key.
  Result<AdvisorRecommendation> rec = SelectConfigurations(candidates, 1000);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->selected.size(), 2u);
  EXPECT_DOUBLE_EQ(rec->total_benefit, 15.0);
}

TEST(AdvisorTest, RandomizedLazyMatchesOptimalSelections) {
  // Small-N random instances with real-valued benefits (no benefit-sum
  // ties, so the optimum is unique almost surely): the lazy search must
  // select exactly what the eager-optimal reference selects.
  Random rng(20260730);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextBounded(8));  // 5..12
    std::vector<SizedCandidate> candidates;
    for (int i = 0; i < n; ++i) {
      // A few shared keys so the at-most-one-per-index rule matters.
      const std::string name = "ix" + std::to_string(rng.NextBounded(6));
      const double benefit = 0.1 + 9.9 * rng.NextDouble();
      const uint64_t bytes = 10 + rng.NextBounded(190);
      candidates.push_back(MakeCandidate(name, benefit, bytes));
    }
    const uint64_t bound = 50 + rng.NextBounded(600);
    Result<AdvisorRecommendation> optimal =
        SelectConfigurations(candidates, bound, AdvisorStrategy::kOptimal);
    Result<AdvisorRecommendation> lazy =
        SelectConfigurations(candidates, bound, AdvisorStrategy::kLazy);
    ASSERT_TRUE(optimal.ok()) << "trial " << trial;
    ASSERT_TRUE(lazy.ok()) << "trial " << trial;
    EXPECT_DOUBLE_EQ(lazy->total_benefit, optimal->total_benefit)
        << "trial " << trial;
    // Same set, not just same value: compare (key, scheme) multisets.
    std::vector<std::string> opt_names, lazy_names;
    for (const auto& c : optimal->selected) {
      opt_names.push_back(c.config.index.name);
    }
    for (const auto& c : lazy->selected) {
      lazy_names.push_back(c.config.index.name);
    }
    std::sort(opt_names.begin(), opt_names.end());
    std::sort(lazy_names.begin(), lazy_names.end());
    EXPECT_EQ(opt_names, lazy_names) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Lazy interval-driven advisor (advisor/search.h)
// ---------------------------------------------------------------------------

std::vector<CandidateConfiguration> EngineWorkloadCandidates() {
  struct Spec {
    const char* col;
    CompressionType type;
    double benefit;
  };
  const std::vector<Spec> specs = {
      {"status", CompressionType::kNullSuppression, 7.3},
      {"status", CompressionType::kDictionaryPage, 6.1},
      {"status", CompressionType::kRle, 2.7},
      {"city", CompressionType::kNullSuppression, 5.9},
      {"city", CompressionType::kDictionaryPage, 8.2},
      {"city", CompressionType::kPrefix, 3.4},
      {"amount", CompressionType::kNullSuppression, 4.8},
      {"amount", CompressionType::kNone, 1.9},
  };
  std::vector<CandidateConfiguration> candidates;
  for (const Spec& spec : specs) {
    CandidateConfiguration c;
    c.table_name = "t";
    c.index = {std::string("ix_") + spec.col + "_" +
                   CompressionTypeName(spec.type),
               {spec.col},
               /*clustered=*/false};
    c.scheme = CompressionScheme::Uniform(spec.type);
    c.benefit = spec.benefit;
    candidates.push_back(std::move(c));
  }
  return candidates;
}

TEST(LazyAdvisorTest, MatchesEagerOptimalSelectionsOnEngine) {
  auto table = WorkloadTable(60000);
  const std::vector<CandidateConfiguration> candidates =
      EngineWorkloadCandidates();
  // A tight target keeps both paths' page-metric footprints in the
  // amortized regime; the bounds are chosen with decision margins wider
  // than the residual estimate noise (selections of a what-if advisor can
  // only be compared up to its estimation precision — see search.h).
  PrecisionTarget target;
  target.rel_error = 0.02;
  EstimationEngineOptions options;
  options.base.fraction = 0.005;
  options.num_threads = 1;
  // Several bounds so take/skip decisions land on different candidates.
  for (uint64_t bound : {uint64_t{300000}, uint64_t{750000},
                         uint64_t{1200000}, uint64_t{2250000}}) {
    // Fresh engines per pass: the eager pass grows its engine's sample.
    EstimationEngine eager_engine(*table, options);
    AdaptiveBatchResult adaptive;
    Result<AdvisorRecommendation> eager =
        AdviseConfigurations(eager_engine, candidates, bound, target,
                             AdvisorStrategy::kOptimal, &adaptive);
    ASSERT_TRUE(eager.ok()) << "bound " << bound;

    EstimationEngine lazy_engine(*table, options);
    LazyAdvisorStats stats;
    Result<AdvisorRecommendation> lazy = AdviseConfigurationsLazy(
        lazy_engine, candidates, bound, target, &stats);
    ASSERT_TRUE(lazy.ok()) << "bound " << bound;

    EXPECT_EQ(SelectedNames(*eager), SelectedNames(*lazy))
        << "bound " << bound;
    EXPECT_DOUBLE_EQ(lazy->total_benefit, eager->total_benefit)
        << "bound " << bound;
    EXPECT_EQ(stats.candidates, candidates.size());
    // In a dense 8-candidate workload most candidates are deliberated, but
    // the exact uncompressed one never needs refinement.
    EXPECT_LT(stats.refined, stats.candidates) << "bound " << bound;
    EXPECT_GT(stats.nodes_visited, 0u);
  }
}

TEST(LazyAdvisorTest, MatchesEagerOptimalSelectionsOnService) {
  // Two tables of different sizes tier the candidate footprints, so
  // feasibility decisions sit well away from the estimate noise.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t1", WorkloadTable(60000, 7)).ok());
  ASSERT_TRUE(catalog.AddTable("t2", WorkloadTable(15000, 11)).ok());
  std::vector<CandidateConfiguration> candidates;
  for (const char* tbl : {"t1", "t2"}) {
    for (CandidateConfiguration c : EngineWorkloadCandidates()) {
      c.table_name = tbl;
      c.index.name = std::string(tbl) + "." + c.index.name;
      c.benefit += tbl[1] == '2' ? 0.13 : 0.0;  // avoid cross-table ties
      candidates.push_back(std::move(c));
    }
  }
  PrecisionTarget target;
  target.rel_error = 0.02;
  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.005;
  options.num_threads = 2;
  for (uint64_t bound : {uint64_t{400000}, uint64_t{800000},
                         uint64_t{2400000}, uint64_t{3600000}}) {
    CatalogEstimationService eager_service(catalog, options);
    Result<AdvisorRecommendation> eager =
        AdviseConfigurations(eager_service, candidates, bound, target,
                             AdvisorStrategy::kOptimal);
    ASSERT_TRUE(eager.ok()) << "bound " << bound;

    CatalogEstimationService lazy_service(catalog, options);
    LazyAdvisorStats stats;
    Result<AdvisorRecommendation> lazy = AdviseConfigurationsLazy(
        lazy_service, candidates, bound, target, &stats);
    ASSERT_TRUE(lazy.ok()) << "bound " << bound;

    EXPECT_EQ(SelectedNames(*eager), SelectedNames(*lazy))
        << "bound " << bound;
    EXPECT_DOUBLE_EQ(lazy->total_benefit, eager->total_benefit)
        << "bound " << bound;
    EXPECT_EQ(stats.candidates, candidates.size());
  }
}

TEST(LazyAdvisorTest, EmptyCandidatesAndMissingTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t1", WorkloadTable(2000, 7)).ok());
  CatalogEstimationService service(catalog);
  LazyAdvisorStats stats;
  Result<AdvisorRecommendation> empty =
      AdviseConfigurationsLazy(service, {}, 1000, PrecisionTarget{}, &stats);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->selected.empty());
  EXPECT_EQ(stats.candidates, 0u);

  CandidateConfiguration c;
  c.table_name = "missing";
  c.index = {"ix", {"status"}, false};
  c.scheme = CompressionScheme::Uniform(CompressionType::kNullSuppression);
  c.benefit = 1.0;
  std::vector<CandidateConfiguration> candidates = {c};
  EXPECT_FALSE(
      AdviseConfigurationsLazy(service, candidates, 1000).ok());
}

}  // namespace
}  // namespace cfest
