// Tests for the physical-design advisor: what-if sizing via SampleCF and
// storage-bounded configuration selection.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "advisor/what_if.h"
#include "datagen/table_gen.h"

namespace cfest {
namespace {

std::unique_ptr<Table> WorkloadTable() {
  auto table = GenerateTable(
      {ColumnSpec::String("status", 12, 6, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(4, 10)),
       ColumnSpec::String("city", 24, 50, FrequencySpec::Zipf(1.0),
                          LengthSpec::Uniform(4, 20)),
       ColumnSpec::Integer("amount", 0)},
      20000, 7);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Uncompressed size arithmetic
// ---------------------------------------------------------------------------

TEST(WhatIfTest, UncompressedEstimateMatchesRealBuild) {
  auto table = WorkloadTable();
  IndexDescriptor desc{"ix_city", {"city"}, false};
  Result<uint64_t> estimate = EstimateUncompressedIndexBytes(*table, desc);
  ASSERT_TRUE(estimate.ok());
  IndexBuildOptions options;
  options.keep_pages = false;
  Result<Index> index = Index::Build(*table, desc, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*estimate, index->stats().page_bytes());
}

TEST(WhatIfTest, ClusteredEstimateMatchesRealBuild) {
  auto table = WorkloadTable();
  IndexDescriptor desc{"cx", {"status"}, true};
  Result<uint64_t> estimate = EstimateUncompressedIndexBytes(*table, desc);
  ASSERT_TRUE(estimate.ok());
  IndexBuildOptions options;
  options.keep_pages = false;
  Result<Index> index = Index::Build(*table, desc, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*estimate, index->stats().page_bytes());
}

TEST(WhatIfTest, RejectsBadIndexes) {
  auto table = WorkloadTable();
  EXPECT_FALSE(
      EstimateUncompressedIndexBytes(*table, {"x", {"missing"}, false}).ok());
  EXPECT_FALSE(EstimateUncompressedIndexBytes(
                   *table, {"x", {"city", "city"}, false})
                   .ok());
}

// ---------------------------------------------------------------------------
// Candidate sizing
// ---------------------------------------------------------------------------

TEST(WhatIfTest, UncompressedCandidateSkipsSampling) {
  auto table = WorkloadTable();
  CandidateConfiguration candidate;
  candidate.table_name = "t";
  candidate.index = {"ix", {"city"}, false};
  candidate.scheme = CompressionScheme::Uniform(CompressionType::kNone);
  candidate.benefit = 10.0;
  SampleCFOptions options;
  options.fraction = 0.05;
  Random rng(1);
  Result<SizedCandidate> sized =
      EstimateCandidateSize(*table, candidate, options, &rng);
  ASSERT_TRUE(sized.ok());
  EXPECT_DOUBLE_EQ(sized->estimated_cf, 1.0);
  EXPECT_EQ(sized->estimated_bytes, sized->uncompressed_bytes);
}

TEST(WhatIfTest, CompressedCandidateShrinks) {
  auto table = WorkloadTable();
  CandidateConfiguration candidate;
  candidate.table_name = "t";
  candidate.index = {"ix", {"status"}, false};
  candidate.scheme =
      CompressionScheme::Uniform(CompressionType::kNullSuppression);
  candidate.benefit = 10.0;
  SampleCFOptions options;
  options.fraction = 0.05;
  Random rng(2);
  Result<SizedCandidate> sized =
      EstimateCandidateSize(*table, candidate, options, &rng);
  ASSERT_TRUE(sized.ok());
  EXPECT_LT(sized->estimated_cf, 1.0);
  EXPECT_LT(sized->estimated_bytes, sized->uncompressed_bytes);
  EXPECT_GT(sized->estimated_bytes, 0u);
}

TEST(WhatIfTest, EstimateTracksTrueCompressedSize) {
  auto table = WorkloadTable();
  CandidateConfiguration candidate;
  candidate.table_name = "t";
  candidate.index = {"ix", {"city"}, false};
  candidate.scheme =
      CompressionScheme::Uniform(CompressionType::kDictionaryPage);
  SampleCFOptions options;
  options.fraction = 0.1;
  Random rng(3);
  Result<SizedCandidate> sized =
      EstimateCandidateSize(*table, candidate, options, &rng);
  ASSERT_TRUE(sized.ok());
  // Ground truth.
  IndexBuildOptions build;
  build.keep_pages = false;
  Result<Index> index = Index::Build(*table, candidate.index, build);
  ASSERT_TRUE(index.ok());
  Result<CompressedIndex> compressed =
      index->Compress(candidate.scheme, build);
  ASSERT_TRUE(compressed.ok());
  const double truth =
      static_cast<double>(compressed->stats().page_bytes());
  const double est = static_cast<double>(sized->estimated_bytes);
  EXPECT_LT(std::max(truth / est, est / truth), 1.5)
      << "estimate " << est << " vs truth " << truth;
}

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

SizedCandidate MakeCandidate(const std::string& name, double benefit,
                             uint64_t bytes) {
  SizedCandidate c;
  c.config.table_name = "t";
  c.config.index.name = name;
  c.config.benefit = benefit;
  c.estimated_bytes = bytes;
  c.uncompressed_bytes = bytes;
  return c;
}

TEST(AdvisorTest, GreedyRespectsBudgetAndUniqueness) {
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", 10.0, 100),
      MakeCandidate("a", 9.0, 40),  // same index, compressed variant
      MakeCandidate("b", 5.0, 50),
      MakeCandidate("c", 1.0, 500),
  };
  Result<AdvisorRecommendation> rec = SelectConfigurations(candidates, 100);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->total_bytes, 100u);
  // Greedy by density picks a@40 (0.225/b) then b@50.
  EXPECT_EQ(rec->selected.size(), 2u);
  EXPECT_DOUBLE_EQ(rec->total_benefit, 14.0);
  std::set<std::string> names;
  for (const auto& c : rec->selected) names.insert(c.config.index.name);
  EXPECT_EQ(names.size(), rec->selected.size());
}

TEST(AdvisorTest, OptimalBeatsGreedyOnAdversarialInstance) {
  // Classic knapsack trap: greedy density takes the small dense item and
  // misses the pairing that fills the budget.
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", 6.0, 50),   // density 0.12
      MakeCandidate("b", 5.0, 60),   // density 0.083
      MakeCandidate("c", 5.0, 60),   // density 0.083
  };
  Result<AdvisorRecommendation> greedy =
      SelectConfigurations(candidates, 120, AdvisorStrategy::kGreedy);
  Result<AdvisorRecommendation> optimal =
      SelectConfigurations(candidates, 120, AdvisorStrategy::kOptimal);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(optimal.ok());
  EXPECT_DOUBLE_EQ(greedy->total_benefit, 11.0);   // a + one of b/c
  EXPECT_DOUBLE_EQ(optimal->total_benefit, 11.0);  // same here...
  // ...but shrink the budget so only the pair b+c fits:
  Result<AdvisorRecommendation> greedy2 =
      SelectConfigurations(candidates, 60, AdvisorStrategy::kGreedy);
  Result<AdvisorRecommendation> optimal2 =
      SelectConfigurations(candidates, 60, AdvisorStrategy::kOptimal);
  ASSERT_TRUE(greedy2.ok());
  ASSERT_TRUE(optimal2.ok());
  EXPECT_GE(optimal2->total_benefit, greedy2->total_benefit);
}

TEST(AdvisorTest, OptimalIsActuallyOptimalOnSmallInstance) {
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", 10.0, 60), MakeCandidate("b", 9.0, 50),
      MakeCandidate("c", 8.0, 50),  MakeCandidate("d", 2.0, 10),
  };
  // Budget 100: best is b + c = 17 (a+d = 12, a alone = 10).
  Result<AdvisorRecommendation> rec =
      SelectConfigurations(candidates, 100, AdvisorStrategy::kOptimal);
  ASSERT_TRUE(rec.ok());
  EXPECT_DOUBLE_EQ(rec->total_benefit, 17.0);
  EXPECT_EQ(rec->total_bytes, 100u);
}

TEST(AdvisorTest, ZeroBenefitCandidatesIgnored) {
  std::vector<SizedCandidate> candidates = {
      MakeCandidate("a", 0.0, 10),
      MakeCandidate("b", -5.0, 10),
  };
  Result<AdvisorRecommendation> rec = SelectConfigurations(candidates, 1000);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->selected.empty());
  EXPECT_EQ(rec->total_bytes, 0u);
}

TEST(AdvisorTest, EmptyBudgetSelectsNothing) {
  std::vector<SizedCandidate> candidates = {MakeCandidate("a", 10.0, 10)};
  Result<AdvisorRecommendation> rec = SelectConfigurations(candidates, 5);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->selected.empty());
}

TEST(AdvisorTest, OptimalRejectsHugeInstances) {
  std::vector<SizedCandidate> candidates;
  for (int i = 0; i < 30; ++i) {
    candidates.push_back(MakeCandidate("ix" + std::to_string(i), 1.0, 10));
  }
  EXPECT_FALSE(
      SelectConfigurations(candidates, 100, AdvisorStrategy::kOptimal).ok());
  EXPECT_TRUE(
      SelectConfigurations(candidates, 100, AdvisorStrategy::kGreedy).ok());
}

}  // namespace
}  // namespace cfest
