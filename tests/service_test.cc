// Tests for the catalog estimation stack: CatalogEstimationService's
// cross-table batching (bit-identical to per-table engines), the
// reservoir-maintained engine sample with NotifyAppend delta refresh
// (equal to a fresh draw over the grown table), invalidation granularity
// (cache-stats assertions), and the storage-layer append plumbing it all
// rides on.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "common/random.h"
#include "datagen/table_gen.h"
#include "estimator/engine.h"
#include "estimator/service.h"
#include "storage/catalog.h"
#include "storage/table_view.h"

namespace cfest {
namespace {

std::unique_ptr<Table> OrdersTable(uint64_t rows = 12000, uint64_t seed = 7) {
  auto table = GenerateTable(
      {ColumnSpec::String("status", 12, 6, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(4, 10)),
       ColumnSpec::String("city", 24, 50, FrequencySpec::Zipf(1.0),
                          LengthSpec::Uniform(4, 20)),
       ColumnSpec::Integer("amount", 400)},
      rows, seed);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

std::unique_ptr<Table> LineitemTable(uint64_t rows = 15000,
                                     uint64_t seed = 11) {
  auto table = GenerateTable(
      {ColumnSpec::Integer("partkey", 800),
       ColumnSpec::String("shipmode", 8, 7, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(3, 8)),
       ColumnSpec::Integer("quantity", 50)},
      rows, seed);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

/// A catalog holding both tables.
std::unique_ptr<Catalog> TwoTableCatalog() {
  auto catalog = std::make_unique<Catalog>();
  EXPECT_TRUE(catalog->AddTable("orders", OrdersTable()).ok());
  EXPECT_TRUE(catalog->AddTable("lineitem", LineitemTable()).ok());
  return catalog;
}

/// Candidates interleaved across the two tables — the service must group
/// them internally yet return positionally aligned results.
std::vector<CandidateConfiguration> MixedCandidates() {
  std::vector<CandidateConfiguration> candidates;
  auto add = [&](const std::string& table, const std::string& col,
                 CompressionType type) {
    CandidateConfiguration c;
    c.table_name = table;
    c.index = {"ix_" + col + "_" + CompressionTypeName(type), {col},
               /*clustered=*/false};
    c.scheme = CompressionScheme::Uniform(type);
    c.benefit = 1.0;
    candidates.push_back(std::move(c));
  };
  for (CompressionType type :
       {CompressionType::kNullSuppression, CompressionType::kRle,
        CompressionType::kPrefix}) {
    add("orders", "status", type);
    add("lineitem", "shipmode", type);
    add("orders", "city", type);
    add("lineitem", "partkey", type);
  }
  // One uncompressed candidate for the schema-arithmetic path.
  CandidateConfiguration none;
  none.table_name = "orders";
  none.index = {"ix_amount_none", {"amount"}, false};
  none.scheme = CompressionScheme::Uniform(CompressionType::kNone);
  candidates.push_back(std::move(none));
  return candidates;
}

// ---------------------------------------------------------------------------
// Storage plumbing: append-only tables and catalog deltas
// ---------------------------------------------------------------------------

TEST(MutableTableTest, AppendRowsGrowsTableAndKeepsExistingBytes) {
  auto table = OrdersTable(100);
  const uint64_t n = table->num_rows();
  const std::string row0(table->row(0).data(), table->row(0).size());

  auto decoded = table->DecodeRow(5);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(table->AppendRow(*decoded).ok());
  EXPECT_EQ(n + 1, table->num_rows());
  // Existing rows keep their ids and bytes; the new row equals its source.
  EXPECT_EQ(row0, std::string(table->row(0).data(), table->row(0).size()));
  EXPECT_EQ(std::string(table->row(5).data(), table->row(5).size()),
            std::string(table->row(n).data(), table->row(n).size()));
}

TEST(MutableTableTest, ViewsRefuseAppends) {
  auto table = OrdersTable(100);
  auto view = TableView::Make(*table, {0, 1, 2});
  ASSERT_TRUE(view.ok());
  auto decoded = table->DecodeRow(0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE((*view)->AppendRow(*decoded).ok());
}

TEST(CatalogTest, AppendRowsReturnsTheAppendedRange) {
  auto catalog = TwoTableCatalog();
  auto before = catalog->GetTable("orders");
  ASSERT_TRUE(before.ok());
  const uint64_t n = (*before)->num_rows();

  std::vector<Row> rows;
  for (RowId id = 0; id < 5; ++id) {
    auto decoded = (*before)->DecodeRow(id);
    ASSERT_TRUE(decoded.ok());
    rows.push_back(*decoded);
  }
  auto range = catalog->AppendRows("orders", rows);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(n, range->begin);
  EXPECT_EQ(n + 5, range->end);
  EXPECT_EQ(5u, range->size());
  EXPECT_EQ(n + 5, (*catalog->GetTable("orders"))->num_rows());

  EXPECT_FALSE(catalog->AppendRows("nope", rows).ok());
}

TEST(CatalogTest, RemoveTableHandsOwnershipBack) {
  auto catalog = TwoTableCatalog();
  EXPECT_TRUE(catalog->HasTable("orders"));
  EXPECT_EQ(2u, catalog->num_tables());

  auto removed = catalog->RemoveTable("orders");
  ASSERT_TRUE(removed.ok());
  EXPECT_NE(nullptr, removed->get());
  EXPECT_GT((*removed)->num_rows(), 0u);
  EXPECT_FALSE(catalog->HasTable("orders"));
  EXPECT_EQ(1u, catalog->num_tables());
  EXPECT_FALSE(catalog->RemoveTable("orders").ok());

  // The name is free again.
  EXPECT_TRUE(catalog->AddTable("orders", std::move(*removed)).ok());
  EXPECT_EQ(2u, catalog->num_tables());
}

// ---------------------------------------------------------------------------
// Acceptance (1): cross-table EstimateAll is bit-identical to per-table
// engines under the same per-table seeds
// ---------------------------------------------------------------------------

TEST(ServiceTest, CrossTableBatchMatchesPerTableEnginesBitForBit) {
  auto catalog = TwoTableCatalog();
  const std::vector<CandidateConfiguration> candidates = MixedCandidates();

  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.02;
  options.base.metric = SizeMetric::kPageBytes;
  options.seed = 42;
  options.table_seeds["lineitem"] = 1234;  // exercise per-table seeds
  CatalogEstimationService service(*catalog, options);
  EXPECT_EQ(42u, service.SeedForTable("orders"));
  EXPECT_EQ(1234u, service.SeedForTable("lineitem"));

  auto batch = service.EstimateAll(candidates);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(candidates.size(), batch->size());

  // Reference: one engine per table, same seeds, same shared options.
  std::map<std::string, std::unique_ptr<EstimationEngine>> engines;
  for (const std::string& name : catalog->TableNames()) {
    EstimationEngineOptions engine_options;
    engine_options.base = options.base;
    engine_options.seed = service.SeedForTable(name);
    engines.emplace(name, std::make_unique<EstimationEngine>(
                              **catalog->GetTable(name), engine_options));
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto single = engines.at(candidates[i].table_name)->Estimate(candidates[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single->estimated_cf, (*batch)[i].estimated_cf)
        << "candidate " << i << " (" << candidates[i].index.name << ")";
    EXPECT_EQ(single->estimated_bytes, (*batch)[i].estimated_bytes);
    EXPECT_EQ(single->uncompressed_bytes, (*batch)[i].uncompressed_bytes);
    EXPECT_EQ(candidates[i].index.name, (*batch)[i].config.index.name);
  }

  // One engine and one sample per table, regardless of candidate count.
  const CatalogEstimationService::Stats stats = service.stats();
  EXPECT_EQ(2u, stats.engines_created);
  EXPECT_EQ(2u, stats.samples_drawn);
}

TEST(ServiceTest, ParallelFanOutIsDeterministic) {
  auto catalog = TwoTableCatalog();
  const std::vector<CandidateConfiguration> candidates = MixedCandidates();

  auto run = [&](uint32_t threads) {
    CatalogEstimationServiceOptions options;
    options.base.fraction = 0.02;
    options.num_threads = threads;
    CatalogEstimationService service(*catalog, options);
    auto sized = service.EstimateAll(candidates);
    EXPECT_TRUE(sized.ok());
    return std::move(sized).ValueOrDie();
  };

  const std::vector<SizedCandidate> serial = run(1);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::vector<SizedCandidate> parallel = run(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].estimated_cf, parallel[i].estimated_cf);
      EXPECT_EQ(serial[i].estimated_bytes, parallel[i].estimated_bytes);
    }
  }
}

TEST(ServiceTest, RemovedTablesEngineIsNeverServed) {
  auto catalog = TwoTableCatalog();
  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.02;
  CatalogEstimationService service(*catalog, options);
  const std::vector<CandidateConfiguration> candidates = MixedCandidates();
  ASSERT_TRUE(service.EstimateAll(candidates).ok());

  // Removing the table must drop the cached engine: lookups fail instead
  // of serving an engine bound to a table the caller now owns.
  auto removed = catalog->RemoveTable("orders");
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(service.Engine("orders").ok());
  EXPECT_FALSE(service.EstimateAll(candidates).ok());

  // Re-registering serves a fresh engine bound to the current table.
  ASSERT_TRUE(catalog->AddTable("orders", std::move(*removed)).ok());
  auto engine = service.Engine("orders");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(*catalog->GetTable("orders"), &(*engine)->table());
  EXPECT_TRUE(service.EstimateAll(candidates).ok());
}

TEST(ServiceTest, UnknownTableFailsTheBatchUpFront) {
  auto catalog = TwoTableCatalog();
  std::vector<CandidateConfiguration> candidates = MixedCandidates();
  candidates[3].table_name = "supplier";  // not registered

  CatalogEstimationService service(*catalog);
  auto sized = service.EstimateAll(candidates);
  EXPECT_FALSE(sized.ok());
  EXPECT_EQ(StatusCode::kNotFound, sized.status().code());
}

TEST(ServiceTest, AdviseConfigurationsMergesAcrossTables) {
  auto catalog = TwoTableCatalog();
  const std::vector<CandidateConfiguration> candidates = MixedCandidates();

  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.02;
  CatalogEstimationService service(*catalog, options);
  auto sized = service.EstimateAll(candidates);
  ASSERT_TRUE(sized.ok());
  uint64_t total = 0;
  for (const SizedCandidate& s : *sized) total += s.estimated_bytes;

  auto rec = AdviseConfigurations(service, candidates, total / 2);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->total_bytes, total / 2);
  ASSERT_FALSE(rec->selected.empty());
  // The merged recommendation spans both tables (the workload is balanced
  // enough that a half-bound selection should touch each).
  bool saw_orders = false, saw_lineitem = false;
  for (const SizedCandidate& s : rec->selected) {
    saw_orders |= s.config.table_name == "orders";
    saw_lineitem |= s.config.table_name == "lineitem";
  }
  EXPECT_TRUE(saw_orders);
  EXPECT_TRUE(saw_lineitem);
}

// ---------------------------------------------------------------------------
// Acceptance (2): NotifyAppend + re-estimate equals a fresh engine over the
// grown table (same reservoir contents under the same RNG stream)
// ---------------------------------------------------------------------------

/// Rows 'delta' rows decoded from `source` to append (content doesn't
/// matter for the reservoir identity; reusing early rows keeps it simple).
std::vector<Row> DeltaRows(const Table& source, uint64_t delta) {
  std::vector<Row> rows;
  for (RowId id = 0; id < delta; ++id) {
    auto decoded = source.DecodeRow(id % source.num_rows());
    EXPECT_TRUE(decoded.ok());
    rows.push_back(*decoded);
  }
  return rows;
}

TEST(ReservoirEngineTest, IncrementalRefreshEqualsFreshDrawOverGrownTable) {
  constexpr uint64_t kSeed = 77;
  constexpr uint64_t kCapacity = 300;
  const uint64_t base_rows = 10000;
  const uint64_t delta = 1000;  // 10% growth

  // Engine A: drawn over the base table, then grown incrementally.
  auto catalog = std::make_unique<Catalog>();
  ASSERT_TRUE(catalog->AddTable("orders", OrdersTable(base_rows)).ok());
  const Table* table_a = *catalog->GetTable("orders");

  EstimationEngineOptions options;
  options.base.fraction = 0.02;
  options.base.metric = SizeMetric::kPageBytes;
  options.seed = kSeed;
  options.maintain_reservoir = true;
  options.reservoir_capacity = kCapacity;
  EstimationEngine engine_a(*table_a, options);

  const IndexDescriptor desc{"ix", {"city"}, false};
  const CompressionScheme scheme =
      CompressionScheme::Uniform(CompressionType::kDictionaryPage);
  ASSERT_TRUE(engine_a.EstimateCF(desc, scheme).ok());  // draw over base

  auto range = catalog->AppendRows("orders", DeltaRows(*table_a, delta));
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(engine_a.NotifyAppend(*range).ok());
  auto incremental = engine_a.EstimateCF(desc, scheme);
  ASSERT_TRUE(incremental.ok());

  // Engine B: fresh, drawn in one pass over an identically grown table.
  auto grown = OrdersTable(base_rows);
  for (const Row& row : DeltaRows(*grown, delta)) {
    ASSERT_TRUE(grown->AppendRow(row).ok());
  }
  ASSERT_EQ(base_rows + delta, grown->num_rows());
  EstimationEngine engine_b(*grown, options);
  auto fresh = engine_b.EstimateCF(desc, scheme);
  ASSERT_TRUE(fresh.ok());

  // Same reservoir contents (row ids, slot for slot) ...
  auto sample_a = engine_a.SampleTable();
  auto sample_b = engine_b.SampleTable();
  ASSERT_TRUE(sample_a.ok());
  ASSERT_TRUE(sample_b.ok());
  const auto* view_a = dynamic_cast<const TableView*>(*sample_a);
  const auto* view_b = dynamic_cast<const TableView*>(*sample_b);
  ASSERT_NE(nullptr, view_a);
  ASSERT_NE(nullptr, view_b);
  EXPECT_EQ(view_a->row_ids(), view_b->row_ids());

  // ... hence bit-identical estimates.
  EXPECT_EQ(fresh->cf.value, incremental->cf.value);
  EXPECT_EQ(fresh->sample_rows, incremental->sample_rows);
  EXPECT_EQ(fresh->sample_compressed.page_bytes(),
            incremental->sample_compressed.page_bytes());
}

TEST(ReservoirEngineTest, NotifyAppendValidatesModeAndRanges) {
  auto table = OrdersTable(1000);

  // Engines without reservoir maintenance refuse.
  EstimationEngine frozen(*table, {});
  EXPECT_FALSE(frozen.NotifyAppend({0, 1}).ok());

  EstimationEngineOptions options;
  options.base.fraction = 0.02;
  options.maintain_reservoir = true;
  EstimationEngine engine(*table, options);

  // Before the first draw, a valid range is an accepted no-op.
  EXPECT_TRUE(engine.NotifyAppend({900, 1000}).ok());
  EXPECT_EQ(0u, engine.cache_stats().samples_drawn);

  ASSERT_TRUE(engine.SampleTable().ok());
  // Ranges past the table end, inverted, or non-contiguous are rejected.
  EXPECT_FALSE(engine.NotifyAppend({1000, 1200}).ok());
  EXPECT_FALSE(engine.NotifyAppend({900, 800}).ok());
  EXPECT_TRUE(engine.NotifyAppend({1000, 1000}).ok());  // empty: no-op

  // External-rng engines cannot maintain a reservoir.
  Random rng(3);
  EstimationEngineOptions bad = options;
  bad.rng = &rng;
  EstimationEngine external(*table, bad);
  EXPECT_FALSE(external.SampleTable().ok());
}

// ---------------------------------------------------------------------------
// Acceptance (3): only affected sample indexes are invalidated
// ---------------------------------------------------------------------------

TEST(ServiceTest, NotifyAppendInvalidatesOnlyTheAffectedTable) {
  auto catalog = TwoTableCatalog();
  const std::vector<CandidateConfiguration> candidates = MixedCandidates();

  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.02;
  options.maintain_reservoirs = true;
  CatalogEstimationService service(*catalog, options);
  ASSERT_TRUE(service.EstimateAll(candidates).ok());

  auto orders_engine = service.Engine("orders");
  auto lineitem_engine = service.Engine("lineitem");
  ASSERT_TRUE(orders_engine.ok());
  ASSERT_TRUE(lineitem_engine.ok());
  const auto orders_before = (*orders_engine)->cache_stats();
  const auto lineitem_before = (*lineitem_engine)->cache_stats();
  EXPECT_GT(orders_before.index_builds, 0u);
  EXPECT_EQ(1u, orders_before.sample_version);
  EXPECT_EQ(0u, orders_before.invalidations);

  // Grow orders by 10% — comfortably enough that some appended row enters
  // the reservoir (each of the 1200 rows enters with ~2% probability).
  const Table* orders = *catalog->GetTable("orders");
  auto range = catalog->AppendRows("orders", DeltaRows(*orders, 1200));
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(service.NotifyAppend("orders", *range).ok());

  // Orders: its cached indexes were dropped, version bumped; the service
  // aggregate counts exactly one effective refresh.
  const auto orders_after = (*orders_engine)->cache_stats();
  EXPECT_EQ(orders_before.index_builds, orders_after.invalidations);
  EXPECT_EQ(2u, orders_after.sample_version);
  EXPECT_EQ(1u, service.stats().refreshes);
  EXPECT_EQ(orders_after.invalidations, service.stats().invalidations);

  // Lineitem: untouched — same version, nothing invalidated.
  const auto lineitem_after = (*lineitem_engine)->cache_stats();
  EXPECT_EQ(0u, lineitem_after.invalidations);
  EXPECT_EQ(1u, lineitem_after.sample_version);

  // Re-estimating rebuilds only orders' indexes; lineitem is all hits.
  ASSERT_TRUE(service.EstimateAll(candidates).ok());
  const auto orders_rebuilt = (*orders_engine)->cache_stats();
  const auto lineitem_rebuilt = (*lineitem_engine)->cache_stats();
  EXPECT_EQ(orders_before.index_builds * 2, orders_rebuilt.index_builds);
  EXPECT_EQ(lineitem_before.index_builds, lineitem_rebuilt.index_builds);
  EXPECT_GT(lineitem_rebuilt.index_cache_hits,
            lineitem_before.index_cache_hits);

  // NotifyAppend for an unknown table is an error; for a table whose
  // engine was never created it is a cheap no-op.
  EXPECT_FALSE(service.NotifyAppend("supplier", *range).ok());
}

TEST(ReservoirEngineTest, RejectedAppendInvalidatesNothing) {
  // Capacity 1 over a large base: a 1-row append enters the reservoir with
  // probability 1/(n+1) — the pinned seed below is one where it does not.
  auto table = OrdersTable(10000);
  EstimationEngineOptions options;
  options.base.fraction = 0.02;
  options.maintain_reservoir = true;
  options.reservoir_capacity = 1;
  options.seed = 42;
  EstimationEngine engine(*table, options);

  const IndexDescriptor desc{"ix", {"status"}, false};
  const CompressionScheme scheme =
      CompressionScheme::Uniform(CompressionType::kRle);
  ASSERT_TRUE(engine.EstimateCF(desc, scheme).ok());
  const auto before = engine.cache_stats();
  ASSERT_EQ(1u, before.sample_version);

  auto decoded = table->DecodeRow(0);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(table->AppendRow(*decoded).ok());
  ASSERT_TRUE(engine.NotifyAppend({10000, 10001}).ok());

  const auto after = engine.cache_stats();
  EXPECT_EQ(1u, after.sample_version) << "appended row must not have entered "
                                         "the capacity-1 reservoir under "
                                         "seed 42";
  EXPECT_EQ(0u, after.invalidations);

  // The cached index is still served.
  ASSERT_TRUE(engine.EstimateCF(desc, scheme).ok());
  EXPECT_EQ(before.index_builds, engine.cache_stats().index_builds);
  EXPECT_GT(engine.cache_stats().index_cache_hits, before.index_cache_hits);
}

// ---------------------------------------------------------------------------
// Concurrency: epoch-consistent estimates under appends and sample growth
// ---------------------------------------------------------------------------

// Client threads estimate (service batches AND directly against pinned
// epochs) while an appender streams rows into "orders" and a grower
// extends "lineitem"'s sample. Three contracts:
//   1. every service batch stays OK and positionally aligned mid-stream;
//   2. every estimate produced against a pinned epoch, replayed after all
//      writers quiesce against the SAME epoch object, is bit-identical —
//      estimates are pure functions of the epoch;
//   3. after the warm-up draw, every pin took the lock-free path (the
//      writer mutex is never touched by steady-state estimates).
TEST(ConcurrentServiceTest, EstimatesStayEpochConsistentUnderAppendsAndGrowth) {
  auto catalog = TwoTableCatalog();
  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.02;
  options.maintain_reservoirs = true;
  options.num_threads = 4;
  CatalogEstimationService service(*catalog, options);
  const std::vector<CandidateConfiguration> candidates = MixedCandidates();

  // Warm-up draws both samples, so every pin below is steady-state.
  ASSERT_TRUE(service.EstimateAll(candidates).ok());

  auto orders_engine = service.Engine("orders");
  auto lineitem_engine = service.Engine("lineitem");
  ASSERT_TRUE(orders_engine.ok());
  ASSERT_TRUE(lineitem_engine.ok());

  std::vector<size_t> orders_ix;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].table_name == "orders" &&
        !IsUncompressedScheme(candidates[i].scheme)) {
      orders_ix.push_back(i);
    }
  }
  ASSERT_FALSE(orders_ix.empty());

  struct PinnedResult {
    std::shared_ptr<const SampleEpoch> epoch;
    size_t candidate = 0;
    SizedCandidate sized;
  };
  constexpr int kClients = 3;
  constexpr int kRoundsPerClient = 4;
  std::vector<std::vector<PinnedResult>> pinned(kClients);
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int id = 0; id < kClients; ++id) {
    clients.emplace_back([&, id] {
      EstimationEngine* engine = *orders_engine;
      for (int round = 0; round < kRoundsPerClient; ++round) {
        // Service path: coalesced, pool-fanned batches mid-stream.
        auto batch = service.EstimateAll(candidates);
        if (!batch.ok() || batch->size() != candidates.size()) {
          ++failures;
          return;
        }
        for (size_t i = 0; i < candidates.size(); ++i) {
          if ((*batch)[i].config.index.name != candidates[i].index.name) {
            ++failures;  // positional alignment / config re-stamping broke
            return;
          }
        }
        // Engine path: pin an epoch mid-stream, estimate, keep the pin for
        // the quiesced replay below.
        auto epoch = engine->PinEpoch();
        if (!epoch.ok()) {
          ++failures;
          return;
        }
        const size_t c = orders_ix[(id + round) % orders_ix.size()];
        auto sized = engine->EstimateAt(**epoch, candidates[c]);
        if (!sized.ok()) {
          ++failures;
          return;
        }
        pinned[id].push_back(PinnedResult{*epoch, c, *sized});
      }
    });
  }

  std::thread appender([&] {
    const Table* orders = *catalog->GetTable("orders");
    while (!stop.load(std::memory_order_relaxed)) {
      auto range = catalog->AppendRows("orders", DeltaRows(*orders, 200));
      if (!range.ok() || !service.NotifyAppend("orders", *range).ok()) {
        ++failures;
        return;
      }
    }
  });
  std::thread grower([&] {
    EstimationEngine* engine = *lineitem_engine;
    uint64_t target = engine->sample_rows();
    while (!stop.load(std::memory_order_relaxed)) {
      target += 40;
      if (!engine->GrowSampleToEpoch(target).ok()) {
        ++failures;
        return;
      }
    }
  });

  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  appender.join();
  grower.join();
  ASSERT_EQ(0, failures.load());

  // Quiesced replay: the same epoch object must reproduce every mid-stream
  // estimate bit for bit, no matter how far the table and sample have
  // moved on since.
  for (const auto& per_client : pinned) {
    for (const PinnedResult& p : per_client) {
      auto replay =
          (*orders_engine)->EstimateAt(*p.epoch, candidates[p.candidate]);
      ASSERT_TRUE(replay.ok());
      EXPECT_EQ(p.sized.estimated_cf, replay->estimated_cf);
      EXPECT_EQ(p.sized.estimated_bytes, replay->estimated_bytes);
      EXPECT_EQ(p.sized.uncompressed_bytes, replay->uncompressed_bytes);
      EXPECT_EQ(p.sized.sample_rows, replay->sample_rows);
    }
  }

  // Lock-freedom by counting: each engine fell through to the writer mutex
  // exactly once (its initial draw); every pin after that was the atomic
  // fast path.
  EXPECT_EQ(1u, (*orders_engine)->cache_stats().locked_pins);
  EXPECT_EQ(1u, (*lineitem_engine)->cache_stats().locked_pins);
  const CatalogEstimationService::Stats stats = service.stats();
  EXPECT_GT(stats.lock_free_pins, 0u);
  EXPECT_EQ(stats.coalesce_requests,
            stats.coalesce_admitted + stats.coalesce_merged);
}

}  // namespace
}  // namespace cfest
