// Tests for the storage substrate: types, schema, row codec (the paper's
// fixed-width char(k) layout and null-suppressed lengths), tables, slotted
// pages, and the catalog.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/page.h"
#include "storage/row_codec.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/types.h"
#include "storage/value.h"

namespace cfest {
namespace {

Schema TestSchema() {
  return std::move(Schema::Make({{"id", Int64Type()},
                                 {"flag", CharType(1)},
                                 {"name", CharType(20)},
                                 {"qty", Int32Type()}}))
      .ValueOrDie();
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

TEST(TypesTest, FixedWidths) {
  EXPECT_EQ(Int32Type().FixedWidth(), 4u);
  EXPECT_EQ(Int64Type().FixedWidth(), 8u);
  EXPECT_EQ(DateType().FixedWidth(), 4u);
  EXPECT_EQ(DecimalType().FixedWidth(), 8u);
  EXPECT_EQ(CharType(20).FixedWidth(), 20u);
  EXPECT_EQ(VarcharType(300).FixedWidth(), 300u);
}

TEST(TypesTest, Classification) {
  EXPECT_TRUE(CharType(5).IsString());
  EXPECT_TRUE(VarcharType(5).IsString());
  EXPECT_FALSE(Int32Type().IsString());
  EXPECT_TRUE(Int64Type().IsInteger());
  EXPECT_TRUE(DateType().IsInteger());
  EXPECT_FALSE(CharType(5).IsInteger());
}

TEST(TypesTest, Names) {
  EXPECT_EQ(Int32Type().ToString(), "int32");
  EXPECT_EQ(CharType(20).ToString(), "char(20)");
  EXPECT_EQ(VarcharType(44).ToString(), "varchar(44)");
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TEST(SchemaTest, OffsetsAndRowWidth) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.num_columns(), 4u);
  EXPECT_EQ(schema.offset(0), 0u);
  EXPECT_EQ(schema.offset(1), 8u);
  EXPECT_EQ(schema.offset(2), 9u);
  EXPECT_EQ(schema.offset(3), 29u);
  EXPECT_EQ(schema.row_width(), 33u);
}

TEST(SchemaTest, RejectsInvalidDefinitions) {
  EXPECT_FALSE(Schema::Make({}).ok());
  EXPECT_FALSE(Schema::Make({{"", Int32Type()}}).ok());
  EXPECT_FALSE(
      Schema::Make({{"a", Int32Type()}, {"a", Int64Type()}}).ok());
  EXPECT_FALSE(Schema::Make({{"s", CharType(0)}}).ok());
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema schema = TestSchema();
  EXPECT_EQ(*schema.ColumnIndex("name"), 2u);
  EXPECT_TRUE(schema.ColumnIndex("nope").status().IsNotFound());
}

TEST(SchemaTest, Projection) {
  Schema schema = TestSchema();
  Result<Schema> proj = schema.Project({2, 0});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->num_columns(), 2u);
  EXPECT_EQ(proj->column(0).name, "name");
  EXPECT_EQ(proj->column(1).name, "id");
  EXPECT_EQ(proj->row_width(), 28u);
  EXPECT_FALSE(schema.Project({9}).ok());
  EXPECT_FALSE(schema.Project({}).ok());
}

TEST(SchemaTest, EqualityAndToString) {
  Schema a = TestSchema();
  Schema b = TestSchema();
  EXPECT_TRUE(a == b);
  EXPECT_NE(a.ToString().find("name char(20)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Row codec
// ---------------------------------------------------------------------------

TEST(RowCodecTest, EncodeDecodeRoundTrip) {
  RowCodec codec(TestSchema());
  Row row = {Value::Int(42), Value::Str("A"), Value::Str("abc"),
             Value::Int(-7)};
  std::string buf;
  ASSERT_TRUE(codec.Encode(row, &buf).ok());
  EXPECT_EQ(buf.size(), codec.schema().row_width());
  Result<Row> decoded = codec.Decode(Slice(buf));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(RowCodecTest, StringPaddedWithBlanks) {
  RowCodec codec(TestSchema());
  Row row = {Value::Int(1), Value::Str("X"), Value::Str("abc"), Value::Int(0)};
  std::string buf;
  ASSERT_TRUE(codec.Encode(row, &buf).ok());
  // "abc" + 17 blanks at offset 9, exactly as the paper's Fig. 1a layout.
  EXPECT_EQ(buf.substr(9, 20), "abc" + std::string(17, ' '));
}

TEST(RowCodecTest, IntegersLittleEndianSignExtended) {
  RowCodec codec(TestSchema());
  Row row = {Value::Int(-2), Value::Str("X"), Value::Str("s"), Value::Int(-2)};
  std::string buf;
  ASSERT_TRUE(codec.Encode(row, &buf).ok());
  Result<Value> id = codec.DecodeCell(Slice(buf), 0);
  Result<Value> qty = codec.DecodeCell(Slice(buf), 3);
  EXPECT_EQ(id->AsInt(), -2);
  EXPECT_EQ(qty->AsInt(), -2);
}

TEST(RowCodecTest, RejectsBadRows) {
  RowCodec codec(TestSchema());
  std::string buf;
  // Wrong arity.
  EXPECT_TRUE(codec.Encode({Value::Int(1)}, &buf).IsInvalidArgument());
  // String too long for char(1).
  Row too_long = {Value::Int(1), Value::Str("XY"), Value::Str("a"),
                  Value::Int(0)};
  EXPECT_TRUE(codec.Encode(too_long, &buf).IsOutOfRange());
  // Type mismatch.
  Row mismatch = {Value::Str("x"), Value::Str("X"), Value::Str("a"),
                  Value::Int(0)};
  EXPECT_TRUE(codec.Encode(mismatch, &buf).IsInvalidArgument());
  // Int32 overflow.
  Row overflow = {Value::Int(1), Value::Str("X"), Value::Str("a"),
                  Value::Int(1ll << 40)};
  EXPECT_TRUE(codec.Encode(overflow, &buf).IsOutOfRange());
  // Failed encodes must leave the buffer unchanged.
  EXPECT_TRUE(buf.empty());
}

TEST(RowCodecTest, DecodeRejectsShortBuffer) {
  RowCodec codec(TestSchema());
  std::string buf(10, 'x');
  EXPECT_TRUE(codec.Decode(Slice(buf)).status().IsCorruption());
}

TEST(RowCodecTest, NullSuppressedLengthStrings) {
  const DataType t = CharType(20);
  std::string cell = "abc" + std::string(17, ' ');
  EXPECT_EQ(NullSuppressedLength(Slice(cell), t), 3u);
  std::string blank(20, ' ');
  EXPECT_EQ(NullSuppressedLength(Slice(blank), t), 0u);
  std::string full(20, 'x');
  EXPECT_EQ(NullSuppressedLength(Slice(full), t), 20u);
  // NUL padding also suppressed (paper: "suppress either zeros or blanks").
  std::string nulpad = "ab" + std::string(18, '\0');
  EXPECT_EQ(NullSuppressedLength(Slice(nulpad), t), 2u);
}

TEST(RowCodecTest, NullSuppressedLengthIntegers) {
  const DataType t = Int64Type();
  RowCodec codec(std::move(Schema::Make({{"v", Int64Type()}})).ValueOrDie());
  std::string buf;
  ASSERT_TRUE(codec.Encode({Value::Int(1)}, &buf).ok());
  EXPECT_EQ(NullSuppressedLength(Slice(buf), t), 1u);
  buf.clear();
  ASSERT_TRUE(codec.Encode({Value::Int(256)}, &buf).ok());
  EXPECT_EQ(NullSuppressedLength(Slice(buf), t), 2u);
  buf.clear();
  ASSERT_TRUE(codec.Encode({Value::Int(0)}, &buf).ok());
  EXPECT_EQ(NullSuppressedLength(Slice(buf), t), 0u);
  buf.clear();
  // Negative values have 0xFF high bytes: nothing to suppress.
  ASSERT_TRUE(codec.Encode({Value::Int(-1)}, &buf).ok());
  EXPECT_EQ(NullSuppressedLength(Slice(buf), t), 8u);
}

TEST(RowCodecTest, LengthHeaderBytesByWidth) {
  EXPECT_EQ(LengthHeaderBytes(CharType(20)), 1u);
  EXPECT_EQ(LengthHeaderBytes(CharType(255)), 1u);
  EXPECT_EQ(LengthHeaderBytes(CharType(256)), 2u);
  EXPECT_EQ(LengthHeaderBytes(Int64Type()), 1u);
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, OrderingAndEquality) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Str("a") < Value::Str("b"));
  EXPECT_TRUE(Value::Int(5) == Value::Int(5));
  EXPECT_FALSE(Value::Int(5) == Value::Str("5"));
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Str("xy").ToString(), "xy");
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, BuildAndAccess) {
  TableBuilder builder(TestSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(builder
                    .Append({Value::Int(i), Value::Str("F"),
                             Value::Str("row" + std::to_string(i)),
                             Value::Int(i * 2)})
                    .ok());
  }
  auto table = builder.Finish();
  EXPECT_EQ(table->num_rows(), 10u);
  EXPECT_EQ(table->row_width(), 33u);
  EXPECT_EQ(table->data_bytes(), 330u);
  Result<Row> row = table->DecodeRow(3);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].AsInt(), 3);
  EXPECT_EQ((*row)[2].AsString(), "row3");
  // Zero-copy cell view.
  EXPECT_EQ(table->cell(3, 1).ToString(), "F");
}

TEST(TableTest, AppendEncodedValidatesWidth) {
  TableBuilder builder(TestSchema());
  std::string bad(10, 'x');
  EXPECT_TRUE(builder.AppendEncoded(Slice(bad)).IsInvalidArgument());
  std::string good(33, ' ');
  EXPECT_TRUE(builder.AppendEncoded(Slice(good)).ok());
  EXPECT_EQ(builder.num_rows(), 1u);
}

// ---------------------------------------------------------------------------
// Page
// ---------------------------------------------------------------------------

TEST(PageTest, BuildAndReadRecords) {
  PageBuilder builder(42, PageType::kDataLeaf, 4096);
  ASSERT_TRUE(builder.Add(Slice("hello")).ok());
  ASSERT_TRUE(builder.Add(Slice("world!")).ok());
  Page page = builder.Finish();
  EXPECT_EQ(page.page_id(), 42u);
  EXPECT_EQ(page.type(), PageType::kDataLeaf);
  EXPECT_EQ(page.slot_count(), 2u);
  EXPECT_EQ(page.page_size(), 4096u);
  EXPECT_EQ(page.record(0)->ToString(), "hello");
  EXPECT_EQ(page.record(1)->ToString(), "world!");
  EXPECT_TRUE(page.record(2).status().IsOutOfRange());
  EXPECT_EQ(page.used_bytes(),
            kPageHeaderSize + 11 + 2 * kSlotSize);
  EXPECT_EQ(page.free_bytes(), 4096 - page.used_bytes());
}

TEST(PageTest, FitsAccountsForSlot) {
  PageBuilder builder(0, PageType::kDataLeaf, 128);
  // capacity = 128 - 32 header = 96; record + 4-byte slot each.
  EXPECT_TRUE(builder.Fits(92));
  EXPECT_FALSE(builder.Fits(93));
}

TEST(PageTest, AddUntilFull) {
  PageBuilder builder(0, PageType::kDataLeaf, 256);
  std::string rec(20, 'r');
  int added = 0;
  while (builder.Add(Slice(rec)).ok()) ++added;
  // 256 - 32 = 224 bytes; each record consumes 24 -> 9 records.
  EXPECT_EQ(added, 9);
  EXPECT_TRUE(builder.Add(Slice(rec)).IsCapacityExceeded());
  Page page = builder.Finish();
  EXPECT_EQ(page.slot_count(), 9u);
}

TEST(PageTest, OversizedRecordRejected) {
  PageBuilder builder(0, PageType::kDataLeaf, 256);
  std::string huge(500, 'x');
  EXPECT_TRUE(builder.Add(Slice(huge)).IsInvalidArgument());
  EXPECT_EQ(PageBuilder::MaxRecordSize(256), 256 - kPageHeaderSize - kSlotSize);
}

TEST(PageTest, EmptyPageIsValid) {
  PageBuilder builder(7, PageType::kInternal, 512);
  Page page = builder.Finish();
  EXPECT_EQ(page.slot_count(), 0u);
  EXPECT_EQ(page.type(), PageType::kInternal);
  EXPECT_EQ(page.used_bytes(), kPageHeaderSize);
}

TEST(PageTest, FromBufferRejectsCorruption) {
  EXPECT_TRUE(Page::FromBuffer("short").status().IsCorruption());
  // A page whose slot directory overruns the buffer.
  PageBuilder builder(0, PageType::kDataLeaf, 128);
  ASSERT_TRUE(builder.Add(Slice("data")).ok());
  std::string buf = builder.Finish().buffer();
  buf[10] = static_cast<char>(0xFF);  // slot_count low byte -> 255 slots
  EXPECT_FALSE(Page::FromBuffer(buf).ok());
}

TEST(PageTest, RoundTripThroughBuffer) {
  PageBuilder builder(9, PageType::kCompressedLeaf, 1024);
  ASSERT_TRUE(builder.Add(Slice("abc")).ok());
  Page page = builder.Finish();
  Result<Page> reloaded = Page::FromBuffer(page.buffer());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->record(0)->ToString(), "abc");
  EXPECT_EQ(reloaded->page_id(), 9u);
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

std::unique_ptr<Table> OneRowTable() {
  TableBuilder builder(
      std::move(Schema::Make({{"x", Int32Type()}})).ValueOrDie());
  EXPECT_TRUE(builder.Append({Value::Int(1)}).ok());
  return builder.Finish();
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t1", OneRowTable()).ok());
  EXPECT_TRUE(catalog.HasTable("t1"));
  EXPECT_FALSE(catalog.HasTable("t2"));
  Result<const Table*> t = catalog.GetTable("t1");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 1u);
  EXPECT_TRUE(catalog.GetTable("t2").status().IsNotFound());
}

TEST(CatalogTest, RejectsDuplicatesAndBadInput) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t", OneRowTable()).ok());
  EXPECT_TRUE(catalog.AddTable("t", OneRowTable()).IsAlreadyExists());
  EXPECT_TRUE(catalog.AddTable("", OneRowTable()).IsInvalidArgument());
  EXPECT_TRUE(catalog.AddTable("x", nullptr).IsInvalidArgument());
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"t"});
}

}  // namespace
}  // namespace cfest
