// Fixture: must lint clean — exercises every way a finding is legitimately
// absent: allow() suppressions (same line and preceding comment line),
// rule tokens inside comments/strings, and the epoch-pinned surface that
// the epoch-compat rule must NOT flag. Never compiled; parsed by
// tools/cfest_lint.py --check-fixtures.
namespace cfest_fixture {

struct Engine;

struct BridgeToExternalApi {
  // An audited exception: this bridge re-exports the compat wrapper for
  // external callers and is allowed to touch it.
  void Forward(Engine& engine) {
    engine.Estimate(0);  // cfest-lint: allow(epoch-compat)
    // cfest-lint: allow(epoch-compat)
    engine.SampleIndex(1);
  }

  // The epoch-pinned surface and the pin-once batch API are fine.
  void Pinned(Engine& engine) {
    engine.EstimateAt(0, 1);
    engine.EstimateCFAt(0, 1, 2);
    engine.SampleIndexAt(0, 1);
    engine.CompressOnSampleAt(0, 1, 2);
    engine.EstimateAll(3);
  }

  // Mentions in comments and strings never fire: std::mutex,
  // engine.Estimate(x), int num_rows = 0.
  const char* doc = "std::mutex and engine.CompressOnSample(a, b)";

  // Row counts in the right type are fine.
  unsigned long long num_rows = 0;
  void Rows(unsigned long long total_rows);
};

}  // namespace cfest_fixture
