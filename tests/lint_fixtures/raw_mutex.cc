// Fixture: trips [raw-mutex] — raw std:: synchronization primitives are
// banned outside src/common/mutex.h. Never compiled; parsed by
// tools/cfest_lint.py --check-fixtures.
#include <mutex>

namespace cfest_fixture {

struct BadQueue {
  std::mutex mu;                  // finding: raw std::mutex
  std::condition_variable ready;  // finding: raw std::condition_variable

  void Drain() {
    std::lock_guard<std::mutex> lock(mu);  // finding: raw std::lock_guard
  }
};

}  // namespace cfest_fixture
