// Fixture: trips [metric-name-concat] — instrumentation sites must obtain
// labeled children through the family API (GetCounter(name, labels) /
// RegisterCounters(labels, ...)), never by concatenating a dimension onto
// the metric name, which fragments the family and breaks the
// aggregate-parity contract. Never compiled; parsed by
// tools/cfest_lint.py --check-fixtures.
namespace cfest_fixture {

struct Registry {
  void* GetCounter(const char*);
};

void BadPerTableCounters(Registry& registry, const char* table) {
  // finding: per-table metric NAME minted by concatenation
  registry.GetCounter(("cfest.engine.estimates." + std::string(table)).c_str());
  // finding: prefix-concatenated variant
  auto name = std::string(table) + "cfest.coalescer.requests";
  registry.GetCounter(name.c_str());
}

}  // namespace cfest_fixture
