// Fixture: must lint clean — the approved ways to split a metric by
// dimension: fixed family names with label sets, concatenation that is
// NOT a metric name, and an audited allow() suppression. Never compiled;
// parsed by tools/cfest_lint.py --check-fixtures.
namespace cfest_fixture {

struct Registry {
  void* GetCounter(const char*);
  void* GetCounterLabeled(const char*, const char*, const char*);
};

void GoodPerTableCounters(Registry& registry, const char* table) {
  // Fixed family name; the dimension travels as a label.
  registry.GetCounterLabeled("cfest.engine.estimates", "table", table);
  // Mentioning "cfest.engine." + table in a comment must not fire.
  registry.GetCounter("cfest.engine.samples_drawn");
  // Concatenation of non-metric strings is fine.
  auto path = std::string("/tmp/cfest.out.") + table;
  (void)path;
}

void AuditedException(Registry& registry, const char* suffix) {
  // A one-off migration shim, explicitly suppressed:
  registry.GetCounter(("cfest.legacy." + std::string(suffix)).c_str());  // cfest-lint: allow(metric-name-concat)
}

}  // namespace cfest_fixture
