// Fixture: trips [epoch-compat] — estimator/advisor internals must size
// through the epoch-pinned *At(epoch, ...) surface, never the
// pin-and-forward compat wrappers. Never compiled; parsed by
// tools/cfest_lint.py --check-fixtures.
namespace cfest_fixture {

struct Engine;

struct BadAdvisor {
  Engine* engine_;

  void Rank(Engine& engine) {
    engine.SampleIndex(0);           // finding: compat wrapper
    engine_->CompressOnSample(0, 1); // finding: compat wrapper
    engine_->Estimate(2);            // finding: compat wrapper
  }
};

}  // namespace cfest_fixture
