// Fixture: trips [kernel-parity] — every kernels:: entry point needs a
// kernels::scalar:: reference implementation. Never compiled; parsed by
// tools/cfest_lint.py --check-fixtures.
#ifndef CFEST_TESTS_LINT_FIXTURES_KERNEL_PARITY_H_
#define CFEST_TESTS_LINT_FIXTURES_KERNEL_PARITY_H_

#include <cstddef>
#include <cstdint>

namespace cfest {
namespace kernels {

void CoveredKernel(const char* cells, size_t n, uint32_t* out);
uint64_t OrphanKernel(const char* cells, size_t n);  // finding: no scalar ref

namespace scalar {
void CoveredKernel(const char* cells, size_t n, uint32_t* out);
}  // namespace scalar

}  // namespace kernels
}  // namespace cfest

#endif  // CFEST_TESTS_LINT_FIXTURES_KERNEL_PARITY_H_
