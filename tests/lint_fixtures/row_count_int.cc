// Fixture: trips [row-count-int] — row counts are uint64_t by contract;
// int-typed declarations and casts truncate sizing math past 2^31 rows.
// Never compiled; parsed by tools/cfest_lint.py --check-fixtures.
namespace cfest_fixture {

unsigned long long TableRows();

void Size() {
  int num_rows = 0;                                   // finding
  long total_rows = 0;                                // finding
  int sampled = static_cast<int>(TableRows());        // ok: name not rowish
  int bad_cast = static_cast<int>(0 + TableRows());   // ok: no rowish token
  (void)num_rows;
  (void)total_rows;
  (void)sampled;
  (void)bad_cast;
}

}  // namespace cfest_fixture
