// Tests for StreamingSampleCF and the shared Algorithm-R core it now rides
// on (sampling/reservoir.h): reservoir determinism under a fixed seed,
// Estimate() repeatability as the stream grows, and bit-equality between
// the streaming estimator's reservoir and one maintained externally through
// the shared ReservoirSampler core.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/table_gen.h"
#include "estimator/streaming.h"
#include "index/index.h"
#include "sampling/reservoir.h"
#include "sampling/sampler.h"

namespace cfest {
namespace {

std::unique_ptr<Table> StreamSource(uint64_t rows = 20000) {
  auto table = GenerateTable(
      {ColumnSpec::String("status", 12, 6, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(4, 10)),
       ColumnSpec::Integer("amount", 400)},
      rows, 7);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

StreamingSampleCF MakeStreaming(const Table& source, uint64_t capacity,
                                uint64_t seed) {
  StreamingSampleCF::Options options;
  options.sample_capacity = capacity;
  options.seed = seed;
  auto streaming = StreamingSampleCF::Make(
      source.schema(), IndexDescriptor{"ix", {"status"}, false},
      CompressionScheme::Uniform(CompressionType::kDictionaryPage), options);
  EXPECT_TRUE(streaming.ok());
  return std::move(streaming).ValueOrDie();
}

// ---------------------------------------------------------------------------
// ReservoirSampler core
// ---------------------------------------------------------------------------

TEST(ReservoirCoreTest, FillsSequentiallyThenReplacesWithinCapacity) {
  Random rng(1);
  ReservoirSampler core(4);
  EXPECT_EQ(4u, core.capacity());
  // While filling, slots are assigned in order and no randomness is drawn.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(i, core.Offer(&rng));
  }
  EXPECT_EQ(4u, core.size());
  // Beyond capacity, every assignment stays within [0, capacity) or skips.
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t slot = core.Offer(&rng);
    if (slot != ReservoirSampler::kSkip) {
      EXPECT_LT(slot, 4u);
    }
  }
  EXPECT_EQ(1004u, core.items_seen());
  EXPECT_EQ(4u, core.size());
}

TEST(ReservoirCoreTest, ResumedStreamEqualsOnePassStream) {
  // The property the engine's NotifyAppend is built on: offering items
  // 0..n-1 then n..n'-1 equals offering 0..n'-1 in one pass.
  Random rng_split(9), rng_once(9);
  ReservoirSampler split(16), once(16);
  std::vector<uint64_t> slots_split, slots_once;
  for (uint64_t i = 0; i < 500; ++i) slots_split.push_back(split.Offer(&rng_split));
  for (uint64_t i = 500; i < 1000; ++i) slots_split.push_back(split.Offer(&rng_split));
  for (uint64_t i = 0; i < 1000; ++i) slots_once.push_back(once.Offer(&rng_once));
  EXPECT_EQ(slots_once, slots_split);
}

TEST(ReservoirCoreTest, MatchesTheReservoirRowSamplerBitForBit) {
  // The RowSampler strategy and the core must consume the same RNG stream
  // and produce the same ids — they are one algorithm in two containers.
  auto table = StreamSource(5000);
  auto sampler = MakeReservoirSampler();
  Random rng_sampler(21), rng_core(21);
  auto ids = sampler->SampleIds(*table, 0.01, &rng_sampler);
  ASSERT_TRUE(ids.ok());

  const uint64_t capacity = ids->size();
  ReservoirSampler core(capacity);
  std::vector<RowId> manual(capacity, 0);
  for (RowId id = 0; id < table->num_rows(); ++id) {
    const uint64_t slot = core.Offer(&rng_core);
    if (slot != ReservoirSampler::kSkip) manual[slot] = id;
  }
  EXPECT_EQ(*ids, manual);
}

// ---------------------------------------------------------------------------
// StreamingSampleCF
// ---------------------------------------------------------------------------

TEST(StreamingTest, ReservoirIsDeterministicUnderAFixedSeed) {
  auto source = StreamSource();
  StreamingSampleCF a = MakeStreaming(*source, 500, 42);
  StreamingSampleCF b = MakeStreaming(*source, 500, 42);
  for (RowId id = 0; id < source->num_rows(); ++id) {
    ASSERT_TRUE(a.Add(source->row(id)).ok());
    ASSERT_TRUE(b.Add(source->row(id)).ok());
  }
  EXPECT_EQ(source->num_rows(), a.rows_seen());
  EXPECT_EQ(500u, a.reservoir_size());
  EXPECT_EQ(a.rows_seen(), b.rows_seen());

  auto ea = a.Estimate();
  auto eb = b.Estimate();
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(ea->cf.value, eb->cf.value);
  EXPECT_EQ(ea->sample_compressed.page_bytes(),
            eb->sample_compressed.page_bytes());

  // A different seed keeps a different reservoir. (Content-level check
  // through the shared core: the CF itself can coincide on a
  // low-cardinality column, where any 500-row sample compresses alike.)
  auto reservoir_ids = [&](uint64_t seed) {
    Random rng(seed);
    ReservoirSampler core(500);
    std::vector<RowId> ids(500, 0);
    for (RowId id = 0; id < source->num_rows(); ++id) {
      const uint64_t slot = core.Offer(&rng);
      if (slot != ReservoirSampler::kSkip) ids[slot] = id;
    }
    return ids;
  };
  EXPECT_NE(reservoir_ids(42), reservoir_ids(43));
}

TEST(StreamingTest, EstimateIsRepeatableAsTheStreamGrows) {
  auto source = StreamSource();
  StreamingSampleCF streaming = MakeStreaming(*source, 400, 5);

  double last_cf = -1.0;
  for (int phase = 0; phase < 4; ++phase) {
    const RowId begin = source->num_rows() / 4 * phase;
    const RowId end = source->num_rows() / 4 * (phase + 1);
    for (RowId id = begin; id < end; ++id) {
      ASSERT_TRUE(streaming.Add(source->row(id)).ok());
    }
    // Estimate() is a pure function of the current reservoir: calling it
    // twice mid-stream returns the same bits and does not perturb the
    // stream (the RNG is only consumed by Add).
    auto first = streaming.Estimate();
    auto second = streaming.Estimate();
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first->cf.value, second->cf.value);
    EXPECT_EQ(first->sample_rows, second->sample_rows);
    EXPECT_EQ(first->sample_compressed.page_bytes(),
              second->sample_compressed.page_bytes());
    EXPECT_EQ(streaming.rows_seen(), end);
    last_cf = first->cf.value;
  }
  EXPECT_GT(last_cf, 0.0);

  // Interleaved estimates did not change the final reservoir: a clean run
  // over the same stream with the same seed lands on the same estimate.
  StreamingSampleCF clean = MakeStreaming(*source, 400, 5);
  for (RowId id = 0; id < source->num_rows(); ++id) {
    ASSERT_TRUE(clean.Add(source->row(id)).ok());
  }
  auto clean_estimate = clean.Estimate();
  ASSERT_TRUE(clean_estimate.ok());
  EXPECT_EQ(last_cf, clean_estimate->cf.value);
}

TEST(StreamingTest, MatchesAnExternallyMaintainedSharedCoreReservoir) {
  // StreamingSampleCF must be exactly "shared core + row-bytes slots":
  // maintain the same reservoir externally through ReservoirSampler and
  // verify the estimates agree bit for bit.
  auto source = StreamSource(8000);
  constexpr uint64_t kCapacity = 256;
  constexpr uint64_t kSeed = 123;
  StreamingSampleCF streaming = MakeStreaming(*source, kCapacity, kSeed);

  Random rng(kSeed);
  ReservoirSampler core(kCapacity);
  std::vector<std::string> reservoir;
  for (RowId id = 0; id < source->num_rows(); ++id) {
    ASSERT_TRUE(streaming.Add(source->row(id)).ok());
    const uint64_t slot = core.Offer(&rng);
    if (slot == ReservoirSampler::kSkip) continue;
    const Slice row = source->row(id);
    if (slot == reservoir.size()) {
      reservoir.emplace_back(row.data(), row.size());
    } else {
      reservoir[static_cast<size_t>(slot)].assign(row.data(), row.size());
    }
  }
  EXPECT_EQ(kCapacity, streaming.reservoir_size());
  EXPECT_EQ(core.items_seen(), streaming.rows_seen());

  // Build the estimate from the external reservoir with the same options.
  TableBuilder builder(source->schema());
  for (const std::string& row : reservoir) {
    ASSERT_TRUE(builder.AppendEncoded(Slice(row)).ok());
  }
  std::unique_ptr<Table> sample = builder.Finish();
  const IndexBuildOptions build{kDefaultPageSize, /*keep_pages=*/false};
  auto index =
      Index::Build(*sample, IndexDescriptor{"ix", {"status"}, false}, build);
  ASSERT_TRUE(index.ok());
  auto compressed = index->Compress(
      CompressionScheme::Uniform(CompressionType::kDictionaryPage), build);
  ASSERT_TRUE(compressed.ok());

  auto estimate = streaming.Estimate();
  ASSERT_TRUE(estimate.ok());
  const double external_cf =
      MeasureCF(index->stats(), compressed->stats(), SizeMetric::kDataBytes)
          .value;
  EXPECT_EQ(external_cf, estimate->cf.value);
  EXPECT_EQ(sample->num_rows(), estimate->sample_rows);
}

}  // namespace
}  // namespace cfest
