// Tests for the adaptive estimation stack: confidence-interval coverage of
// the analytic-model intervals (Theorem 1 and the empirical variant) across
// generated distributions, RNG-stream-resuming sample growth (prefix
// equality with a fresh draw, incremental index extension, reservoir
// replay), and the AdaptiveEstimator loop (convergence, budget exhaustion,
// bit-equality with a fixed-fraction run at each candidate's final
// fraction).

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "common/random.h"
#include "datagen/table_gen.h"
#include "estimator/adaptive.h"
#include "estimator/analytic_model.h"
#include "estimator/compression_fraction.h"
#include "estimator/engine.h"
#include "estimator/service.h"
#include "sampling/sampler.h"
#include "storage/catalog.h"
#include "storage/row_codec.h"

namespace cfest {
namespace {

std::unique_ptr<Table> WorkloadTable(uint64_t rows = 20000, uint64_t seed = 7) {
  auto table = GenerateTable(
      {ColumnSpec::String("status", 12, 6, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(4, 10)),
       ColumnSpec::String("city", 24, 50, FrequencySpec::Zipf(1.0),
                          LengthSpec::Uniform(4, 20)),
       ColumnSpec::Integer("amount", 400)},
      rows, seed);
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

CandidateConfiguration Candidate(const char* col, CompressionType type,
                                 const char* table_name = "") {
  CandidateConfiguration c;
  c.table_name = table_name;
  c.index = {std::string("ix_") + col + "_" + CompressionTypeName(type),
             {col},
             /*clustered=*/false};
  c.scheme = CompressionScheme::Uniform(type);
  c.benefit = 1.0;
  return c;
}

// ---------------------------------------------------------------------------
// Confidence helpers
// ---------------------------------------------------------------------------

TEST(AdaptiveMathTest, NumSigmasForConfidenceMatchesNormalQuantiles) {
  auto z95 = NumSigmasForConfidence(0.95);
  ASSERT_TRUE(z95.ok());
  EXPECT_NEAR(*z95, 1.95996, 1e-4);
  auto z68 = NumSigmasForConfidence(0.6826894921);
  ASSERT_TRUE(z68.ok());
  EXPECT_NEAR(*z68, 1.0, 1e-4);
  auto z99 = NumSigmasForConfidence(0.99);
  ASSERT_TRUE(z99.ok());
  EXPECT_NEAR(*z99, 2.57583, 1e-4);
  EXPECT_FALSE(NumSigmasForConfidence(0.0).ok());
  EXPECT_FALSE(NumSigmasForConfidence(1.0).ok());
}

TEST(AdaptiveMathTest, EstimateNeededSampleRowsFollowsInverseSquareLaw) {
  // Halving the width needs 4x the rows.
  EXPECT_EQ(EstimateNeededSampleRows(0.10, 100, 0.05), 400u);
  // Target already met: stay put.
  EXPECT_EQ(EstimateNeededSampleRows(0.04, 100, 0.05), 100u);
  EXPECT_EQ(EstimateNeededSampleRows(0.05, 100, 0.05), 100u);
  // Degenerate inputs.
  EXPECT_EQ(EstimateNeededSampleRows(0.1, 0, 0.05), 0u);
  EXPECT_EQ(EstimateNeededSampleRows(0.1, 100, 0.0), 100u);
}

// ---------------------------------------------------------------------------
// Statistical coverage of the analytic-model intervals
// ---------------------------------------------------------------------------

struct ColumnNsQuantities {
  double truth = 0.0;  // population mean of (l_i + h) / k
};

/// Mean normalized null-suppressed size of `col` over `table` — the
/// quantity both interval functions are centered on.
double MeanNormalizedNsSize(const Table& table, size_t col) {
  const DataType& type = table.schema().column(col).type;
  const double k = static_cast<double>(type.FixedWidth());
  const double h = static_cast<double>(LengthHeaderBytes(type));
  double sum = 0.0;
  for (RowId id = 0; id < table.num_rows(); ++id) {
    sum += (static_cast<double>(
                NullSuppressedLength(table.cell(id, col), type)) +
            h) /
           k;
  }
  return sum / static_cast<double>(table.num_rows());
}

void RunCoverage(const Table& table, const char* what) {
  constexpr int kTrials = 40;
  constexpr double kFraction = 0.05;
  const double truth = MeanNormalizedNsSize(table, 0);
  auto sampler = MakeUniformWithReplacementSampler();
  int theorem1_covered = 0;
  int empirical_covered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Random rng(1000 + trial);
    auto sample = sampler->Sample(table, kFraction, &rng);
    ASSERT_TRUE(sample.ok()) << what;
    const double estimate = MeanNormalizedNsSize(**sample, 0);
    const ConfidenceInterval t1 =
        Theorem1ConfidenceInterval(estimate, (*sample)->num_rows(), 2.0);
    if (t1.lower <= truth && truth <= t1.upper) ++theorem1_covered;
    auto empirical = EmpiricalNsConfidenceInterval(**sample, 0, estimate, 2.0);
    ASSERT_TRUE(empirical.ok()) << what;
    if (empirical->lower <= truth && truth <= empirical->upper) {
      ++empirical_covered;
    }
    // The data-dependent interval must never be wider than the worst-case
    // Theorem 1 bound (its variance is capped by 1/4 for values in [0,1]).
    EXPECT_LE(empirical->upper - empirical->lower,
              t1.upper - t1.lower + 1e-12)
        << what;
  }
  // Nominal two-sigma coverage is >= 75% by Chebyshev and ~95% under
  // normality. The thresholds sit above nominal but leave slack against
  // binomial noise (bimodal lengths make Theorem 1's worst-case variance
  // nearly tight, pushing its effective coverage toward the nominal rate).
  EXPECT_GE(theorem1_covered, 36) << what;
  EXPECT_GE(empirical_covered, 32) << what;
}

TEST(IntervalCoverageTest, UniformLengthStrings) {
  auto table = GenerateTable(
      {ColumnSpec::String("v", 16, 200, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(2, 14))},
      4000, 21);
  ASSERT_TRUE(table.ok());
  RunCoverage(**table, "uniform");
}

TEST(IntervalCoverageTest, ZipfStrings) {
  auto table = GenerateTable(
      {ColumnSpec::String("v", 16, 500, FrequencySpec::Zipf(1.0),
                          LengthSpec::Uniform(1, 15))},
      4000, 22);
  ASSERT_TRUE(table.ok());
  RunCoverage(**table, "zipf");
}

TEST(IntervalCoverageTest, BimodalStrings) {
  // Half-short / half-long lengths maximize the NS estimator's variance —
  // the case Theorem 1's worst-case 1/4 is tight for.
  auto table = GenerateTable(
      {ColumnSpec::String("v", 16, 300, FrequencySpec::Uniform(),
                          LengthSpec::Bimodal(1, 15))},
      4000, 23);
  ASSERT_TRUE(table.ok());
  RunCoverage(**table, "bimodal");
}

// ---------------------------------------------------------------------------
// Sample growth
// ---------------------------------------------------------------------------

TEST(GrowSampleTest, GrownSampleEqualsFreshDrawAtFinalFraction) {
  auto table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.01;
  options.seed = 17;

  EstimationEngine grown(*table, options);
  ASSERT_TRUE(grown.SampleTable().ok());
  EXPECT_EQ(grown.sample_rows(), 200u);
  auto rows = grown.GrowSample(1500);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 1500u);

  EstimationEngineOptions fresh_options = options;
  fresh_options.base.fraction =
      1500.0 / static_cast<double>(table->num_rows());
  EstimationEngine fresh(*table, fresh_options);

  auto grown_sample = grown.SampleTable();
  auto fresh_sample = fresh.SampleTable();
  ASSERT_TRUE(grown_sample.ok());
  ASSERT_TRUE(fresh_sample.ok());
  ASSERT_EQ((*grown_sample)->num_rows(), (*fresh_sample)->num_rows());
  for (RowId i = 0; i < (*grown_sample)->num_rows(); ++i) {
    Slice a = (*grown_sample)->row(i);
    Slice b = (*fresh_sample)->row(i);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size())) << "row " << i;
  }

  // A target at or below the current size is a no-op; the cap is the table.
  EXPECT_EQ(*grown.GrowSample(100), 1500u);
  EXPECT_EQ(*grown.GrowSample(table->num_rows() * 10), table->num_rows());
}

TEST(GrowSampleTest, ExtendsCachedIndexesBitIdentically) {
  auto table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.02;
  options.seed = 5;

  EstimationEngine grown(*table, options);
  const IndexDescriptor desc{"ix", {"city"}, /*clustered=*/false};
  ASSERT_TRUE(grown.SampleIndex(desc).ok());  // cache a build pre-growth
  ASSERT_TRUE(grown.GrowSample(2000).ok());
  EXPECT_EQ(grown.cache_stats().index_extensions, 1u);
  EXPECT_EQ(grown.cache_stats().index_builds, 1u);

  EstimationEngineOptions fresh_options = options;
  fresh_options.base.fraction =
      2000.0 / static_cast<double>(table->num_rows());
  EstimationEngine fresh(*table, fresh_options);

  auto extended = grown.SampleIndex(desc);
  auto rebuilt = fresh.SampleIndex(desc);
  ASSERT_TRUE(extended.ok());
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_EQ((*extended)->num_rows(), (*rebuilt)->num_rows());
  EXPECT_EQ((*extended)->stats().leaf_pages, (*rebuilt)->stats().leaf_pages);
  EXPECT_EQ((*extended)->stats().leaf_used_bytes,
            (*rebuilt)->stats().leaf_used_bytes);
  for (uint64_t i = 0; i < (*extended)->num_rows(); ++i) {
    Slice a = (*extended)->row(i);
    Slice b = (*rebuilt)->row(i);
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size())) << "row " << i;
  }

  // Estimates off the extended index equal the fresh engine's bitwise.
  const CompressionScheme scheme =
      CompressionScheme::Uniform(CompressionType::kDictionaryPage);
  auto grown_cf = grown.EstimateCF(desc, scheme);
  auto fresh_cf = fresh.EstimateCF(desc, scheme);
  ASSERT_TRUE(grown_cf.ok());
  ASSERT_TRUE(fresh_cf.ok());
  EXPECT_EQ(grown_cf->cf.value, fresh_cf->cf.value);
}

TEST(GrowSampleTest, ReservoirGrowthEqualsFreshDrawAtNewCapacity) {
  auto table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.01;
  options.seed = 11;
  options.maintain_reservoir = true;
  options.reservoir_capacity = 150;

  EstimationEngine grown(*table, options);
  const IndexDescriptor desc{"ix", {"status"}, false};
  const CompressionScheme scheme =
      CompressionScheme::Uniform(CompressionType::kRle);
  ASSERT_TRUE(grown.EstimateCF(desc, scheme).ok());
  auto rows = grown.GrowSample(600);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 600u);

  EstimationEngineOptions fresh_options = options;
  fresh_options.reservoir_capacity = 600;
  EstimationEngine fresh(*table, fresh_options);

  auto grown_cf = grown.EstimateCF(desc, scheme);
  auto fresh_cf = fresh.EstimateCF(desc, scheme);
  ASSERT_TRUE(grown_cf.ok());
  ASSERT_TRUE(fresh_cf.ok());
  EXPECT_EQ(grown_cf->cf.value, fresh_cf->cf.value);
  EXPECT_EQ(grown_cf->sample_rows, 600u);
}

TEST(GrowSampleTest, RejectsExternalRngAndCustomSamplers) {
  auto table = WorkloadTable();
  {
    Random rng(3);
    EstimationEngineOptions options;
    options.base.fraction = 0.01;
    options.rng = &rng;
    EstimationEngine engine(*table, options);
    EXPECT_FALSE(engine.GrowSample(500).ok());
  }
  {
    auto sampler = MakeBlockSampler();
    EstimationEngineOptions options;
    options.base.fraction = 0.01;
    options.base.sampler = sampler.get();
    EstimationEngine engine(*table, options);
    EXPECT_FALSE(engine.GrowSample(500).ok());
  }
}

// ---------------------------------------------------------------------------
// AdaptiveEstimator
// ---------------------------------------------------------------------------

std::vector<CandidateConfiguration> AdaptiveWorkload() {
  return {Candidate("status", CompressionType::kRle),
          Candidate("city", CompressionType::kDictionaryPage),
          Candidate("status", CompressionType::kNullSuppression),
          Candidate("city", CompressionType::kNone)};
}

TEST(AdaptiveEstimatorTest, ConvergesWithinTargetAndBudget) {
  auto table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.005;
  options.seed = 42;
  options.num_threads = 1;
  EstimationEngine engine(*table, options);

  PrecisionTarget target;
  target.rel_error = 0.10;
  target.confidence = 0.90;
  auto result = EstimateAllAdaptive(engine, AdaptiveWorkload(), target);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 4u);
  EXPECT_FALSE(result->budget_exhausted);
  ASSERT_EQ(result->tables.size(), 1u);
  EXPECT_EQ(result->tables[0].final_sample_rows, engine.sample_rows());

  for (const AdaptiveCandidateResult& r : result->candidates) {
    EXPECT_TRUE(r.converged) << r.sized.config.index.name;
    EXPECT_LE(r.interval.upper - r.cf, r.target_half_width + 1e-12)
        << r.sized.config.index.name;
  }
  // The uncompressed candidate is exact and untouched by sampling.
  const AdaptiveCandidateResult& none = result->candidates[3];
  EXPECT_EQ(none.interval_method, "exact");
  EXPECT_EQ(none.cf, 1.0);
  EXPECT_EQ(none.rows_sampled, 0u);
  // NS takes the narrower of Theorem 1's distribution-free bound and the
  // data-dependent replicate width — never wider than the worst case.
  const AdaptiveCandidateResult& ns = result->candidates[2];
  EXPECT_TRUE(ns.interval_method == "theorem1" ||
              ns.interval_method == "group_replicates")
      << ns.interval_method;
  EXPECT_LE((ns.interval.upper - ns.interval.lower) / 2.0,
            ns.interval.num_sigmas * Theorem1StdDevBound(ns.rows_sampled) +
                1e-12);
  // General schemes use the data-dependent replicate interval.
  EXPECT_EQ(result->candidates[0].interval_method, "group_replicates");

  // The growth schedule is monotone and matches the engine's final state.
  const auto& schedule = result->tables[0].rows_per_round;
  ASSERT_FALSE(schedule.empty());
  for (size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GT(schedule[i], schedule[i - 1]);
  }
  EXPECT_EQ(schedule.back(), result->tables[0].final_sample_rows);
}

TEST(AdaptiveEstimatorTest, ConvergedResultEqualsFixedFractionRun) {
  auto table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.005;
  options.seed = 42;
  options.num_threads = 1;
  EstimationEngine engine(*table, options);

  PrecisionTarget target;
  target.rel_error = 0.08;
  target.confidence = 0.90;
  const std::vector<CandidateConfiguration> candidates = AdaptiveWorkload();
  auto result = EstimateAllAdaptive(engine, candidates, target);
  ASSERT_TRUE(result.ok());

  for (size_t i = 0; i < candidates.size(); ++i) {
    const AdaptiveCandidateResult& r = result->candidates[i];
    if (r.rows_sampled == 0) continue;  // uncompressed: no sampling
    EstimationEngineOptions fixed_options = options;
    fixed_options.base.fraction = static_cast<double>(r.rows_sampled) /
                                  static_cast<double>(table->num_rows());
    EstimationEngine fixed(*table, fixed_options);
    auto sized = fixed.Estimate(candidates[i]);
    ASSERT_TRUE(sized.ok());
    EXPECT_EQ(sized->estimated_cf, r.sized.estimated_cf)
        << candidates[i].index.name;
    EXPECT_EQ(sized->estimated_bytes, r.sized.estimated_bytes)
        << candidates[i].index.name;
    EXPECT_EQ(sized->sample_rows, r.rows_sampled)
        << candidates[i].index.name;
    auto cf = fixed.EstimateCF(candidates[i].index, candidates[i].scheme);
    ASSERT_TRUE(cf.ok());
    EXPECT_EQ(cf->cf.value, r.cf) << candidates[i].index.name;
  }
}

TEST(AdaptiveEstimatorTest, ReportsBudgetExhaustion) {
  auto table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.005;
  options.seed = 42;
  options.num_threads = 1;
  EstimationEngine engine(*table, options);

  PrecisionTarget target;
  target.rel_error = 0.0005;  // unreachable within the budget
  target.row_budget = 500;
  auto result = EstimateAllAdaptive(engine, AdaptiveWorkload(), target);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->budget_exhausted);
  EXPECT_LE(result->tables[0].final_sample_rows, 500u);
  bool any_unconverged = false;
  for (const AdaptiveCandidateResult& r : result->candidates) {
    if (!r.converged) {
      any_unconverged = true;
      // Unconverged candidates still report their best estimate and the
      // interval they got stuck at (convergence is on the upper half-width,
      // which the zero-clamped lower bound cannot understate).
      EXPECT_GT(r.rows_sampled, 0u);
      EXPECT_GT(r.interval.upper - r.cf, r.target_half_width);
    }
  }
  EXPECT_TRUE(any_unconverged);
  EXPECT_LE(result->rounds, target.max_rounds);
}

TEST(AdaptiveEstimatorTest, ServiceLevelGrowsEachTableIndependently) {
  auto orders = WorkloadTable(15000, 3);
  auto lineitem = WorkloadTable(25000, 9);
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("orders", std::move(orders)).ok());
  ASSERT_TRUE(catalog.AddTable("lineitem", std::move(lineitem)).ok());

  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.005;
  options.seed = 42;
  options.num_threads = 2;
  CatalogEstimationService service(catalog, options);

  std::vector<CandidateConfiguration> candidates = {
      Candidate("city", CompressionType::kDictionaryPage, "orders"),
      Candidate("status", CompressionType::kRle, "lineitem"),
      Candidate("status", CompressionType::kNullSuppression, "orders"),
  };
  PrecisionTarget target;
  target.rel_error = 0.10;
  target.confidence = 0.90;
  auto result = EstimateAllAdaptive(service, candidates, target);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 3u);
  ASSERT_EQ(result->tables.size(), 2u);
  EXPECT_EQ(result->tables[0].table_name, "orders");
  EXPECT_EQ(result->tables[1].table_name, "lineitem");
  EXPECT_EQ(result->total_sample_rows,
            result->tables[0].final_sample_rows +
                result->tables[1].final_sample_rows);
  for (const AdaptiveCandidateResult& r : result->candidates) {
    EXPECT_TRUE(r.converged) << r.sized.config.index.name;
  }
  // Positional alignment: result i matches candidate i.
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(result->candidates[i].sized.config.index.name,
              candidates[i].index.name);
  }

  auto missing = EstimateAllAdaptive(
      service, std::vector<CandidateConfiguration>{Candidate(
                   "city", CompressionType::kRle, "nope")},
      target);
  EXPECT_FALSE(missing.ok());
}

TEST(AdaptiveEstimatorTest, PrecisionTargetedAdvisorSelectsUnderBound) {
  auto table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.005;
  options.seed = 42;
  options.num_threads = 1;
  EstimationEngine engine(*table, options);

  PrecisionTarget target;
  target.rel_error = 0.10;
  target.confidence = 0.90;
  AdaptiveBatchResult adaptive;
  auto rec = AdviseConfigurations(engine, AdaptiveWorkload(),
                                  /*storage_bound=*/1 << 20, target,
                                  AdvisorStrategy::kGreedy, &adaptive);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->total_bytes, static_cast<uint64_t>(1) << 20);
  EXPECT_EQ(adaptive.candidates.size(), 4u);
  EXPECT_FALSE(adaptive.budget_exhausted);
}

// ---------------------------------------------------------------------------
// CandidateRefiner — the lazy advisor's per-candidate entry point
// ---------------------------------------------------------------------------

TEST(CandidateRefinerTest, RefinesToConvergenceAndMatchesFixedFraction) {
  auto table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.002;
  options.seed = 42;
  options.num_threads = 1;
  EstimationEngine engine(*table, options);

  PrecisionTarget target;
  target.rel_error = 0.05;
  auto refiner = CandidateRefiner::Make(engine, target);
  ASSERT_TRUE(refiner.ok());

  const CandidateConfiguration c =
      Candidate("status", CompressionType::kNullSuppression);
  auto refined = refiner->RefineUntil(c, nullptr);
  ASSERT_TRUE(refined.ok());
  EXPECT_TRUE(refined->converged);
  EXPECT_LE(refined->interval.upper - refined->cf,
            refined->target_half_width);
  EXPECT_EQ(refined->rows_sampled, engine.sample_rows());

  // Prefix property: the refined estimate equals a fixed-fraction engine
  // run at the final fraction under the same seed.
  EstimationEngineOptions fixed_options = options;
  fixed_options.base.fraction = static_cast<double>(refined->rows_sampled) /
                                static_cast<double>(table->num_rows());
  EstimationEngine fixed(*table, fixed_options);
  auto fixed_estimate = fixed.EstimateCF(c.index, c.scheme);
  ASSERT_TRUE(fixed_estimate.ok());
  EXPECT_EQ(fixed_estimate->cf.value, refined->cf);
  EXPECT_EQ(fixed_estimate->sample_rows, refined->rows_sampled);
}

TEST(CandidateRefinerTest, DonePredicateStopsBeforeConvergence) {
  auto table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.002;
  options.seed = 42;
  options.num_threads = 1;
  EstimationEngine engine(*table, options);

  PrecisionTarget target;
  target.rel_error = 0.001;  // far beyond what the base sample gives
  auto refiner = CandidateRefiner::Make(engine, target);
  ASSERT_TRUE(refiner.ok());

  const CandidateConfiguration c =
      Candidate("city", CompressionType::kDictionaryPage);
  const uint64_t rows_before = [&] {
    auto current = refiner->EstimateAtCurrentSample(c);
    EXPECT_TRUE(current.ok());
    return current->rows_sampled;
  }();
  // A done-predicate that accepts immediately must not grow the sample.
  auto accepted = refiner->RefineUntil(
      c, [](const AdaptiveCandidateResult&) { return true; });
  ASSERT_TRUE(accepted.ok());
  EXPECT_FALSE(accepted->converged);
  EXPECT_EQ(accepted->rows_sampled, rows_before);
  EXPECT_EQ(refiner->rounds(), 0u);

  // Without it the refiner grows (until the tiny target exhausts the
  // budget), strictly past the coarse sample.
  auto refined = refiner->RefineUntil(c, nullptr);
  ASSERT_TRUE(refined.ok());
  EXPECT_GT(refined->rows_sampled, rows_before);
  EXPECT_GT(refiner->rounds(), 0u);
}

TEST(CandidateRefinerTest, UncompressedCandidatesAreExact) {
  auto table = WorkloadTable();
  EstimationEngine engine(*table);
  auto refiner = CandidateRefiner::Make(engine, PrecisionTarget{});
  ASSERT_TRUE(refiner.ok());
  const CandidateConfiguration c =
      Candidate("status", CompressionType::kNone);
  auto result = refiner->RefineUntil(c, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->rows_sampled, 0u);
  EXPECT_DOUBLE_EQ(result->cf, 1.0);
  EXPECT_EQ(result->sized.estimated_bytes, result->sized.uncompressed_bytes);
  EXPECT_EQ(engine.sample_rows(), 0u);  // no draw needed
}

TEST(EstimateAllTest, PopulatesSampleRows) {
  auto table = WorkloadTable();
  EstimationEngineOptions options;
  options.base.fraction = 0.01;
  options.seed = 42;
  options.num_threads = 1;
  EstimationEngine engine(*table, options);
  auto sized = engine.EstimateAll(AdaptiveWorkload());
  ASSERT_TRUE(sized.ok());
  EXPECT_EQ((*sized)[0].sample_rows, 200u);
  EXPECT_EQ((*sized)[3].sample_rows, 0u);  // uncompressed
}

}  // namespace
}  // namespace cfest
