// Failure injection: systematically corrupt compressed page images and
// verify every decoder fails with a clean Corruption/OutOfRange status —
// never crashes, never silently accepts garbage that changes row counts.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "compression/compressed_index.h"
#include "datagen/table_gen.h"
#include "estimator/analytic_model.h"
#include "estimator/sample_cf.h"
#include "index/index.h"

namespace cfest {
namespace {

struct Victim {
  std::unique_ptr<Table> table;
  std::unique_ptr<CompressedIndex> compressed;
};

/// Builds a compressed index with pages retained, for mutation.
Result<Victim> BuildVictim(CompressionType type, uint64_t seed) {
  auto table = GenerateTable(
      {ColumnSpec::String("s", 12, 30, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(1, 10)),
       ColumnSpec::Integer("i", 50)},
      300, seed);
  if (!table.ok()) return table.status();
  CompressionScheme scheme;
  scheme.per_column.assign(2, CompressionType::kNone);
  if (MakeColumnCompressor(type, CharType(12)).ok()) {
    scheme.per_column[0] = type;
  }
  if (MakeColumnCompressor(type, Int64Type()).ok()) {
    scheme.per_column[1] = type;
  }
  std::vector<Slice> rows;
  for (RowId id = 0; id < (*table)->num_rows(); ++id) {
    rows.push_back((*table)->row(id));
  }
  IndexBuildOptions options;
  options.page_size = 1024;
  CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         CompressRows((*table)->schema(), scheme, rows,
                                      options));
  Victim victim;
  victim.table = std::move(*table);
  victim.compressed = std::make_unique<CompressedIndex>(std::move(compressed));
  return victim;
}

/// Stateful decoders (the global dictionary) need their cross-page state
/// rebuilt before they can decode anything: replay every cell through a
/// throwaway chunk so the fresh compressor's dictionary matches the one the
/// victim was built with (identical first-occurrence order).
void TrainCompressor(ColumnCompressor* compressor, const Table& table,
                     size_t col) {
  auto chunk = compressor->NewChunk();
  for (RowId id = 0; id < table.num_rows(); ++id) {
    chunk->Add(table.cell(id, col));
  }
  chunk->Finish();
}

/// Re-decodes a chunk after flipping one byte; success is either a clean
/// error or a decode whose *content* differs but is structurally valid.
class FailureInjectionTest
    : public ::testing::TestWithParam<CompressionType> {};

TEST_P(FailureInjectionTest, ByteFlipsNeverCrashChunkDecoders) {
  Result<Victim> victim_result = BuildVictim(GetParam(), 17);
  ASSERT_TRUE(victim_result.ok()) << victim_result.status();
  const CompressedIndex* victim = victim_result->compressed.get();
  ASSERT_FALSE(victim->pages().empty());

  // Extract each column chunk of the first page and mutate it byte by byte.
  Result<Slice> record = victim->pages()[0].record(0);
  ASSERT_TRUE(record.ok());
  ColumnCompressorSet set = std::move(ColumnCompressorSet::Make(
                                          victim->schema(), victim->scheme()))
                                .ValueOrDie();
  for (size_t c = 0; c < victim->schema().num_columns(); ++c) {
    TrainCompressor(set.column(c), *victim_result->table, c);
  }
  size_t pos = 0;
  for (size_t c = 0; c < victim->schema().num_columns(); ++c) {
    uint32_t chunk_len = 0;
    ASSERT_TRUE(pos + 4 <= record->size());
    for (int i = 0; i < 4; ++i) {
      chunk_len |= static_cast<uint32_t>(
                       static_cast<unsigned char>((*record)[pos + i]))
                   << (8 * i);
    }
    pos += 4;
    const std::string original(record->data() + pos, chunk_len);
    pos += chunk_len;

    // Train the (possibly stateful) compressor by decoding the original.
    std::vector<std::string> baseline;
    ASSERT_TRUE(set.column(c)->DecodeChunk(Slice(original), &baseline).ok());

    Random rng(99);
    for (size_t byte = 0; byte < original.size();
         byte += 1 + original.size() / 64) {
      for (unsigned char flip : {0x01, 0x80, 0xFF}) {
        std::string mutated = original;
        mutated[byte] = static_cast<char>(mutated[byte] ^ flip);
        std::vector<std::string> decoded;
        Status st = set.column(c)->DecodeChunk(Slice(mutated), &decoded);
        if (st.ok()) {
          // Structurally valid decodes must produce fixed-width cells.
          for (const std::string& cell : decoded) {
            ASSERT_EQ(cell.size(), victim->schema().width(c));
          }
        } else {
          ASSERT_TRUE(st.IsCorruption() || st.IsOutOfRange()) << st;
        }
      }
    }
  }
}

TEST_P(FailureInjectionTest, TruncatedPagesFailCleanly) {
  Result<Victim> victim_result = BuildVictim(GetParam(), 23);
  ASSERT_TRUE(victim_result.ok());
  const CompressedIndex* victim = victim_result->compressed.get();
  Result<Slice> record = victim->pages()[0].record(0);
  ASSERT_TRUE(record.ok());
  ColumnCompressorSet set = std::move(ColumnCompressorSet::Make(
                                          victim->schema(), victim->scheme()))
                                .ValueOrDie();
  TrainCompressor(set.column(0), *victim_result->table, 0);
  // Feed truncated prefixes of the first chunk.
  uint32_t chunk_len = 0;
  for (int i = 0; i < 4; ++i) {
    chunk_len |= static_cast<uint32_t>(
                     static_cast<unsigned char>((*record)[i]))
                 << (8 * i);
  }
  const Slice chunk(record->data() + 4, chunk_len);
  std::vector<std::string> warmup;
  ASSERT_TRUE(set.column(0)->DecodeChunk(chunk, &warmup).ok());
  for (size_t cut = 0; cut < chunk.size(); cut += 1 + chunk.size() / 32) {
    std::vector<std::string> decoded;
    Status st =
        set.column(0)->DecodeChunk(Slice(chunk.data(), cut), &decoded);
    if (st.ok()) {
      // A prefix that happens to parse must not exceed the true row count.
      EXPECT_LE(decoded.size(), warmup.size());
    } else {
      EXPECT_TRUE(st.IsCorruption()) << st;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, FailureInjectionTest,
                         ::testing::ValuesIn(AllCompressionTypes()),
                         [](const auto& info) {
                           return CompressionTypeName(info.param);
                         });

// ---------------------------------------------------------------------------
// SampleCFFromIndex (paper §II-C) and the empirical CI
// ---------------------------------------------------------------------------

TEST(SampleFromIndexTest, MatchesTableSamplingAccuracy) {
  auto table = GenerateTable(
      {ColumnSpec::String("a", 20, 500, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(1, 16))},
      20000, 7);
  ASSERT_TRUE(table.ok());
  IndexBuildOptions build;
  build.keep_pages = false;
  auto index = Index::Build(**table, {"cx", {"a"}, true}, build);
  ASSERT_TRUE(index.ok());
  const CompressionScheme scheme =
      CompressionScheme::Uniform(CompressionType::kNullSuppression);
  auto truth = ComputeTrueCF(**table, {"cx", {"a"}, true}, scheme);
  ASSERT_TRUE(truth.ok());

  SampleCFOptions options;
  options.fraction = 0.05;
  Random rng(42);
  auto result = SampleCFFromIndex(*index, scheme, options, &rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->sample_rows, 1000u);
  // Theorem-1 accuracy holds for the index-sampled variant too.
  EXPECT_NEAR(result->cf.value, truth->value,
              4.0 * Theorem1StdDevBound(1000));
}

TEST(SampleFromIndexTest, Validation) {
  Schema schema =
      std::move(Schema::Make({{"v", Int64Type()}})).ValueOrDie();
  TableBuilder builder(schema);
  auto empty = builder.Finish();
  auto index = Index::Build(*empty, {"ix", {"v"}, false});
  ASSERT_TRUE(index.ok());
  SampleCFOptions options;
  Random rng(1);
  EXPECT_FALSE(SampleCFFromIndex(
                   *index, CompressionScheme::Uniform(CompressionType::kNone),
                   options, &rng)
                   .ok());
}

TEST(EmpiricalCiTest, TighterThanWorstCaseOnLowVarianceData) {
  auto table = GenerateTable(
      {ColumnSpec::String("a", 20, 100, FrequencySpec::Uniform(),
                          LengthSpec::Constant(5))},
      5000, 9);
  ASSERT_TRUE(table.ok());
  auto sampler = MakeUniformWithReplacementSampler();
  Random rng(3);
  auto sample = sampler->Sample(**table, 0.05, &rng);
  ASSERT_TRUE(sample.ok());
  const double estimate = 0.3;  // (5+1)/20
  auto empirical =
      EmpiricalNsConfidenceInterval(**sample, 0, estimate, 2.0);
  ASSERT_TRUE(empirical.ok());
  const ConfidenceInterval worst_case =
      Theorem1ConfidenceInterval(estimate, (*sample)->num_rows(), 2.0);
  // Constant lengths: the empirical interval collapses to a point while the
  // worst-case band stays wide.
  EXPECT_LT(empirical->upper - empirical->lower,
            (worst_case.upper - worst_case.lower) / 10.0);
  EXPECT_GE(empirical->lower, worst_case.lower);
  EXPECT_LE(empirical->upper, worst_case.upper);
}

TEST(EmpiricalCiTest, Validation) {
  auto table = GenerateTable({ColumnSpec::String("a", 8, 5)}, 1, 1);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(EmpiricalNsConfidenceInterval(**table, 0, 0.5).ok());
  EXPECT_TRUE(
      EmpiricalNsConfidenceInterval(**table, 9, 0.5).status().IsOutOfRange());
}

}  // namespace
}  // namespace cfest
