// Tests for the compression substrate: every compressor's exact cost
// accounting, lossless round trips, corruption handling, and the compressed
// index page packer.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "compression/compressed_index.h"
#include "compression/compressor.h"
#include "compression/scheme.h"
#include "datagen/table_gen.h"
#include "storage/row_codec.h"

namespace cfest {
namespace {

/// Pads `s` to a char(k) fixed-width cell.
std::string PadCell(const std::string& s, uint32_t k) {
  std::string cell = s;
  cell.append(k - s.size(), ' ');
  return cell;
}

/// Encodes an int64 as its 8-byte little-endian cell.
std::string IntCell(int64_t v) {
  std::string cell;
  for (int i = 0; i < 8; ++i) {
    cell.push_back(static_cast<char>((static_cast<uint64_t>(v) >> (8 * i)) &
                                     0xFF));
  }
  return cell;
}

std::unique_ptr<ColumnCompressor> MustMake(CompressionType type,
                                           const DataType& dt,
                                           CompressionOptions options = {}) {
  auto result = MakeColumnCompressor(type, dt, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Factory & names
// ---------------------------------------------------------------------------

TEST(CompressorFactoryTest, NamesRoundTrip) {
  for (CompressionType t : AllCompressionTypes()) {
    Result<CompressionType> parsed =
        CompressionTypeFromName(CompressionTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_TRUE(CompressionTypeFromName("bogus").status().IsNotFound());
}

TEST(CompressorFactoryTest, RejectsZeroWidthColumn) {
  EXPECT_FALSE(
      MakeColumnCompressor(CompressionType::kNone, CharType(0)).ok());
}

// ---------------------------------------------------------------------------
// Cost exactness + round trip, parameterized over every compressor
// ---------------------------------------------------------------------------

struct ChunkCase {
  CompressionType type;
  const char* label;
};

class ChunkContractTest : public ::testing::TestWithParam<ChunkCase> {
 protected:
  /// Verifies Cost()/CostWith() are exact and decode inverts Finish().
  void CheckContract(const DataType& dt, const std::vector<std::string>& cells,
                     CompressionOptions options = {}) {
    auto compressor = MustMake(GetParam().type, dt, options);
    auto chunk = compressor->NewChunk();
    for (const std::string& cell : cells) {
      const size_t predicted = chunk->CostWith(Slice(cell));
      chunk->Add(Slice(cell));
      EXPECT_EQ(chunk->Cost(), predicted)
          << "CostWith must predict Cost after Add";
    }
    EXPECT_EQ(chunk->count(), cells.size());
    const size_t final_cost = chunk->Cost();
    std::string wire = chunk->Finish();
    EXPECT_EQ(wire.size(), final_cost) << "Cost() must equal serialized size";

    std::vector<std::string> decoded;
    ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
    ASSERT_EQ(decoded.size(), cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(decoded[i], cells[i]) << "cell " << i;
    }
  }
};

TEST_P(ChunkContractTest, StringCellsMixedLengths) {
  const uint32_t k = 20;
  std::vector<std::string> cells = {
      PadCell("abc", k),   PadCell("", k),           PadCell("abc", k),
      PadCell("abcdefghijklmnopqrst", k),            PadCell("x", k),
      PadCell("abc", k),   PadCell("zzz", k),
  };
  CheckContract(CharType(k), cells);
}

TEST_P(ChunkContractTest, IntegerCells) {
  std::vector<std::string> cells = {IntCell(0),     IntCell(1),
                                    IntCell(256),   IntCell(-1),
                                    IntCell(1 << 20), IntCell(1),
                                    IntCell(0)};
  CheckContract(Int64Type(), cells);
}

TEST_P(ChunkContractTest, SingleCell) {
  CheckContract(CharType(8), {PadCell("hi", 8)});
}

TEST_P(ChunkContractTest, EmptyChunk) {
  CheckContract(CharType(8), {});
}

TEST_P(ChunkContractTest, AllIdenticalCells) {
  std::vector<std::string> cells(50, PadCell("same", 12));
  CheckContract(CharType(12), cells);
}

TEST_P(ChunkContractTest, AllDistinctCells) {
  std::vector<std::string> cells;
  for (int i = 0; i < 60; ++i) {
    cells.push_back(PadCell("v" + std::to_string(i), 12));
  }
  CheckContract(CharType(12), cells);
}

TEST_P(ChunkContractTest, WideColumnTwoByteLengthHeaders) {
  const uint32_t k = 300;
  std::vector<std::string> cells = {PadCell(std::string(280, 'a'), k),
                                    PadCell("b", k), PadCell("", k)};
  CheckContract(CharType(k), cells);
}

TEST_P(ChunkContractTest, RandomizedSweep) {
  Random rng(99);
  for (uint32_t k : {4u, 16u, 64u}) {
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<std::string> cells;
      const int n = 1 + static_cast<int>(rng.NextBounded(120));
      for (int i = 0; i < n; ++i) {
        const uint32_t len = static_cast<uint32_t>(rng.NextBounded(k + 1));
        std::string s;
        for (uint32_t j = 0; j < len; ++j) {
          s.push_back('a' + static_cast<char>(rng.NextBounded(4)));
        }
        // Avoid trailing blanks in logical values (lost by design under NS).
        if (!s.empty() && s.back() == ' ') s.back() = 'b';
        cells.push_back(PadCell(s, k));
      }
      CheckContract(CharType(k), cells);
    }
  }
}

TEST_P(ChunkContractTest, DecodeRejectsTruncatedChunk) {
  auto compressor = MustMake(GetParam().type, CharType(8));
  auto chunk = compressor->NewChunk();
  chunk->Add(Slice(PadCell("abcdef", 8)));
  chunk->Add(Slice(PadCell("gh", 8)));
  std::string wire = chunk->Finish();
  for (size_t cut = 0; cut + 1 < wire.size(); cut += 3) {
    std::vector<std::string> decoded;
    Status st =
        compressor->DecodeChunk(Slice(wire.data(), cut), &decoded);
    // Either a clean corruption error, or (for prefixes of valid frames)
    // fewer cells; never a crash and never trailing garbage acceptance.
    if (st.ok()) {
      EXPECT_LT(decoded.size(), 2u);
    } else {
      EXPECT_TRUE(st.IsCorruption()) << st;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCompressors, ChunkContractTest,
    ::testing::Values(ChunkCase{CompressionType::kNone, "none"},
                      ChunkCase{CompressionType::kNullSuppression, "ns"},
                      ChunkCase{CompressionType::kDictionaryPage, "dictpage"},
                      ChunkCase{CompressionType::kDictionaryGlobal,
                                "dictglobal"},
                      ChunkCase{CompressionType::kRle, "rle"},
                      ChunkCase{CompressionType::kPrefix, "prefix"},
                      ChunkCase{CompressionType::kPrefixDictionary,
                                "combined"}),
    [](const ::testing::TestParamInfo<ChunkCase>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------------------
// Delta specifics (integer-only; excluded from the string contract sweep)
// ---------------------------------------------------------------------------

TEST(DeltaTest, RejectsStringColumns) {
  EXPECT_FALSE(
      MakeColumnCompressor(CompressionType::kDelta, CharType(8)).ok());
  EXPECT_TRUE(
      MakeColumnCompressor(CompressionType::kDelta, DateType()).ok());
}

TEST(DeltaTest, CostExactAndRoundTrips) {
  auto compressor = MustMake(CompressionType::kDelta, Int64Type());
  auto chunk = compressor->NewChunk();
  const std::vector<int64_t> values = {100, 101, 103, 103, 90,
                                       1 << 20, -5, 0, INT64_MAX,
                                       INT64_MIN + 1};
  std::vector<std::string> cells;
  for (int64_t v : values) cells.push_back(IntCell(v));
  for (const auto& cell : cells) {
    const size_t predicted = chunk->CostWith(Slice(cell));
    chunk->Add(Slice(cell));
    EXPECT_EQ(chunk->Cost(), predicted);
  }
  std::string wire = chunk->Finish();
  EXPECT_EQ(wire.size(), chunk->Cost());
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  ASSERT_EQ(decoded.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(decoded[i], cells[i]) << "value " << values[i];
  }
}

TEST(DeltaTest, SortedKeysCostOneByteEach) {
  auto compressor = MustMake(CompressionType::kDelta, Int64Type());
  auto chunk = compressor->NewChunk();
  chunk->Add(Slice(IntCell(1000000)));
  const size_t base = chunk->Cost();
  for (int64_t v = 1000001; v < 1000050; ++v) {
    chunk->Add(Slice(IntCell(v)));
  }
  // Delta 1 zigzags to 2: a single varint byte per row.
  EXPECT_EQ(chunk->Cost() - base, 49u);
}

TEST(DeltaTest, EmptyChunkRoundTrips) {
  auto compressor = MustMake(CompressionType::kDelta, Int64Type());
  auto chunk = compressor->NewChunk();
  std::string wire = chunk->Finish();
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(DeltaTest, NarrowIntegerWidths) {
  auto compressor = MustMake(CompressionType::kDelta, Int32Type());
  auto chunk = compressor->NewChunk();
  RowCodec codec(std::move(Schema::Make({{"v", Int32Type()}})).ValueOrDie());
  std::vector<std::string> cells;
  for (int64_t v : {-100, 0, 100, INT32_MAX - 1, INT32_MIN + 1}) {
    std::string cell;
    EXPECT_TRUE(codec.Encode({Value::Int(v)}, &cell).ok());
    cells.push_back(cell);
    chunk->Add(Slice(cells.back()));
  }
  std::string wire = chunk->Finish();
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  ASSERT_EQ(decoded.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(decoded[i], cells[i]);
}

// ---------------------------------------------------------------------------
// Frame-of-reference specifics (integer-only)
// ---------------------------------------------------------------------------

TEST(ForTest, RejectsStringColumns) {
  EXPECT_FALSE(MakeColumnCompressor(CompressionType::kFrameOfReference,
                                    CharType(8))
                   .ok());
}

TEST(ForTest, CostExactAndRoundTrips) {
  auto compressor = MustMake(CompressionType::kFrameOfReference, Int64Type());
  auto chunk = compressor->NewChunk();
  const std::vector<int64_t> values = {1000, 1017, 1003, 1000, 1063,
                                       1001, -5,   0,    1000000};
  std::vector<std::string> cells;
  for (int64_t v : values) cells.push_back(IntCell(v));
  for (const auto& cell : cells) {
    const size_t predicted = chunk->CostWith(Slice(cell));
    chunk->Add(Slice(cell));
    EXPECT_EQ(chunk->Cost(), predicted);
  }
  std::string wire = chunk->Finish();
  EXPECT_EQ(wire.size(), chunk->Cost());
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  ASSERT_EQ(decoded.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(decoded[i], cells[i]) << values[i];
  }
}

TEST(ForTest, NarrowRangePacksTightly) {
  auto compressor = MustMake(CompressionType::kFrameOfReference, Int64Type());
  auto chunk = compressor->NewChunk();
  // Values in [10^9, 10^9 + 63]: 6-bit offsets instead of 8 bytes.
  for (int i = 0; i < 800; ++i) {
    chunk->Add(Slice(IntCell(1000000000 + (i % 64))));
  }
  // 2 + 8 + 1 + ceil(800*6/8) = 611.
  EXPECT_EQ(chunk->Cost(), 2u + 8u + 1u + 600u);
}

TEST(ForTest, ConstantColumnNeedsZeroOffsetBits) {
  auto compressor = MustMake(CompressionType::kFrameOfReference, Int64Type());
  auto chunk = compressor->NewChunk();
  for (int i = 0; i < 500; ++i) chunk->Add(Slice(IntCell(42)));
  EXPECT_EQ(chunk->Cost(), 2u + 8u + 1u);  // base only, 0-bit offsets
  std::string wire = chunk->Finish();
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  ASSERT_EQ(decoded.size(), 500u);
  EXPECT_EQ(decoded[0], IntCell(42));
}

TEST(ForTest, ExtremeSpanFallsBackTo64Bits) {
  auto compressor = MustMake(CompressionType::kFrameOfReference, Int64Type());
  auto chunk = compressor->NewChunk();
  chunk->Add(Slice(IntCell(INT64_MIN)));
  chunk->Add(Slice(IntCell(INT64_MAX)));
  std::string wire = chunk->Finish();
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], IntCell(INT64_MIN));
  EXPECT_EQ(decoded[1], IntCell(INT64_MAX));
}

TEST(ForTest, NarrowIntegerWidthRoundTrips) {
  auto compressor = MustMake(CompressionType::kFrameOfReference, Int32Type());
  auto chunk = compressor->NewChunk();
  RowCodec codec(std::move(Schema::Make({{"v", Int32Type()}})).ValueOrDie());
  std::vector<std::string> cells;
  for (int64_t v : {-1000, -1, 0, 7, 123456}) {
    std::string cell;
    EXPECT_TRUE(codec.Encode({Value::Int(v)}, &cell).ok());
    cells.push_back(cell);
    chunk->Add(Slice(cells.back()));
  }
  std::string wire = chunk->Finish();
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  for (size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(decoded[i], cells[i]);
}

// ---------------------------------------------------------------------------
// Combined prefix+dictionary specifics
// ---------------------------------------------------------------------------

TEST(CombinedTest, BeatsPlainDictionaryOnSharedPrefixes) {
  auto dict = MustMake(CompressionType::kDictionaryPage, CharType(32));
  auto combined = MustMake(CompressionType::kPrefixDictionary, CharType(32));
  auto dict_chunk = dict->NewChunk();
  auto combined_chunk = combined->NewChunk();
  for (int i = 0; i < 64; ++i) {
    const std::string value =
        PadCell("warehouse-item-" + std::to_string(i % 16), 32);
    dict_chunk->Add(Slice(value));
    combined_chunk->Add(Slice(value));
  }
  // Same pointers; entries store suffixes instead of 32-byte values.
  EXPECT_LT(combined_chunk->Cost(), dict_chunk->Cost());
}

TEST(CombinedTest, TracksDictionaryEntriesAcrossPages) {
  auto compressor = MustMake(CompressionType::kPrefixDictionary, CharType(8));
  for (int page = 0; page < 2; ++page) {
    auto chunk = compressor->NewChunk();
    chunk->Add(Slice(PadCell("aa", 8)));
    chunk->Add(Slice(PadCell("ab", 8)));
    chunk->Finish();
  }
  EXPECT_EQ(compressor->TotalDictionaryEntries(), 4u);
}

// ---------------------------------------------------------------------------
// Null suppression specifics
// ---------------------------------------------------------------------------

TEST(NullSuppressionTest, CostMatchesPaperFormula) {
  // char(20), value "abc": 3 bytes + 1 length byte (paper Fig. 1a).
  auto compressor =
      MustMake(CompressionType::kNullSuppression, CharType(20));
  auto chunk = compressor->NewChunk();
  const size_t empty_cost = chunk->Cost();  // chunk header only
  chunk->Add(Slice(PadCell("abc", 20)));
  EXPECT_EQ(chunk->Cost() - empty_cost, 3u + 1u);
  chunk->Add(Slice(PadCell("", 20)));  // all blanks: length byte only
  EXPECT_EQ(chunk->Cost() - empty_cost, 4u + 1u);
}

// ---------------------------------------------------------------------------
// Page-level dictionary specifics
// ---------------------------------------------------------------------------

TEST(PageDictTest, DictionaryGrowsOnlyOnNewValues) {
  auto compressor = MustMake(CompressionType::kDictionaryPage, CharType(10));
  auto chunk = compressor->NewChunk();
  chunk->Add(Slice(PadCell("aa", 10)));
  const size_t after_first = chunk->Cost();
  chunk->Add(Slice(PadCell("aa", 10)));
  const size_t after_repeat = chunk->Cost();
  // A repeat adds at most pointer bits (no new 10-byte entry).
  EXPECT_LT(after_repeat - after_first, 2u);
  chunk->Add(Slice(PadCell("bb", 10)));
  EXPECT_GE(chunk->Cost() - after_repeat, 10u);  // new full-width entry
}

TEST(PageDictTest, PointerBitsMatchDictSize) {
  // With d distinct values, pointers are ceil(log2 d) bits (paper §III-B).
  auto compressor = MustMake(CompressionType::kDictionaryPage, CharType(4));
  auto chunk = compressor->NewChunk();
  for (int i = 0; i < 8; ++i) {
    chunk->Add(Slice(PadCell(std::string(1, 'a' + i), 4)));
  }
  // 100 more rows of existing values: 3-bit pointers each.
  const size_t before = chunk->Cost();
  for (int i = 0; i < 100; ++i) {
    chunk->Add(Slice(PadCell("a", 4)));
  }
  const size_t added = chunk->Cost() - before;
  EXPECT_LE(added, (100 * 3) / 8 + 2);
  std::string wire = chunk->Finish();
  EXPECT_EQ(static_cast<int>(static_cast<unsigned char>(wire[2])), 3);
}

TEST(PageDictTest, ByteAlignedPointerOption) {
  CompressionOptions options;
  options.dict_bit_packed_pointers = false;
  auto compressor =
      MustMake(CompressionType::kDictionaryPage, CharType(4), options);
  auto chunk = compressor->NewChunk();
  for (int i = 0; i < 3; ++i) {
    chunk->Add(Slice(PadCell(std::string(1, 'a' + i), 4)));
  }
  std::string wire = chunk->Finish();
  // 3 entries -> 2 bits -> rounded up to 8.
  EXPECT_EQ(static_cast<int>(static_cast<unsigned char>(wire[2])), 8);
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  EXPECT_EQ(decoded.size(), 3u);
}

TEST(PageDictTest, NsEncodedEntriesOption) {
  CompressionOptions options;
  options.dict_entries_full_width = false;
  auto compressor =
      MustMake(CompressionType::kDictionaryPage, CharType(100), options);
  auto chunk = compressor->NewChunk();
  chunk->Add(Slice(PadCell("ab", 100)));
  // Entry costs 1 + 2 bytes instead of 100.
  EXPECT_LT(chunk->Cost(), 20u);
  std::string wire = chunk->Finish();
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  EXPECT_EQ(decoded[0], PadCell("ab", 100));
}

TEST(PageDictTest, TotalDictionaryEntriesAccumulatesAcrossChunks) {
  auto compressor = MustMake(CompressionType::kDictionaryPage, CharType(4));
  for (int page = 0; page < 3; ++page) {
    auto chunk = compressor->NewChunk();
    chunk->Add(Slice(PadCell("x", 4)));
    chunk->Add(Slice(PadCell("y", 4)));
    chunk->Finish();
  }
  // "x" and "y" each appear in 3 pages: sum Pg(i) = 6.
  EXPECT_EQ(compressor->TotalDictionaryEntries(), 6u);
}

// ---------------------------------------------------------------------------
// Global dictionary specifics
// ---------------------------------------------------------------------------

TEST(GlobalDictTest, AuxiliaryBytesAreDTimesK) {
  CompressionOptions options;
  options.global_pointer_bytes = 4;
  auto compressor =
      MustMake(CompressionType::kDictionaryGlobal, CharType(16), options);
  auto chunk = compressor->NewChunk();
  chunk->Add(Slice(PadCell("a", 16)));
  chunk->Add(Slice(PadCell("b", 16)));
  chunk->Add(Slice(PadCell("a", 16)));
  chunk->Finish();
  EXPECT_EQ(compressor->AuxiliaryBytes(), 2u * 16u);  // d * k
  EXPECT_EQ(compressor->TotalDictionaryEntries(), 2u);
  EXPECT_TRUE(compressor->Validate().ok());
}

TEST(GlobalDictTest, RowCostIsExactlyPointerBytes) {
  CompressionOptions options;
  options.global_pointer_bytes = 2;
  auto compressor =
      MustMake(CompressionType::kDictionaryGlobal, CharType(16), options);
  auto chunk = compressor->NewChunk();
  const size_t base = chunk->Cost();
  chunk->Add(Slice(PadCell("a", 16)));
  EXPECT_EQ(chunk->Cost() - base, 2u);
  chunk->Add(Slice(PadCell("zz", 16)));
  EXPECT_EQ(chunk->Cost() - base, 4u);
}

TEST(GlobalDictTest, SharedDictionaryAcrossChunks) {
  auto compressor = MustMake(CompressionType::kDictionaryGlobal, CharType(8));
  auto c1 = compressor->NewChunk();
  c1->Add(Slice(PadCell("v", 8)));
  std::string w1 = c1->Finish();
  auto c2 = compressor->NewChunk();
  c2->Add(Slice(PadCell("v", 8)));  // same value: no new entry
  std::string w2 = c2->Finish();
  EXPECT_EQ(compressor->TotalDictionaryEntries(), 1u);
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(w2), &decoded).ok());
  EXPECT_EQ(decoded[0], PadCell("v", 8));
}

TEST(GlobalDictTest, PointerOverflowDetectedByValidate) {
  CompressionOptions options;
  options.global_pointer_bytes = 1;  // addresses only 256 values
  auto compressor =
      MustMake(CompressionType::kDictionaryGlobal, CharType(8), options);
  auto chunk = compressor->NewChunk();
  for (int i = 0; i < 300; ++i) {
    chunk->Add(Slice(PadCell("v" + std::to_string(i), 8)));
  }
  chunk->Finish();
  EXPECT_TRUE(compressor->Validate().IsCapacityExceeded());
}

// ---------------------------------------------------------------------------
// RLE specifics
// ---------------------------------------------------------------------------

TEST(RleTest, RunsCollapse) {
  auto compressor = MustMake(CompressionType::kRle, CharType(10));
  auto chunk = compressor->NewChunk();
  const size_t base = chunk->Cost();
  for (int i = 0; i < 1000; ++i) chunk->Add(Slice(PadCell("run", 10)));
  // One run: u32 + length byte + 3 payload bytes.
  EXPECT_EQ(chunk->Cost() - base, 4u + 1u + 3u);
  EXPECT_EQ(chunk->count(), 1000u);
}

TEST(RleTest, AlternatingValuesDoNotCollapse) {
  auto compressor = MustMake(CompressionType::kRle, CharType(10));
  auto chunk = compressor->NewChunk();
  for (int i = 0; i < 10; ++i) {
    chunk->Add(Slice(PadCell(i % 2 == 0 ? "a" : "b", 10)));
  }
  std::string wire = chunk->Finish();
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  ASSERT_EQ(decoded.size(), 10u);
  EXPECT_EQ(decoded[0], PadCell("a", 10));
  EXPECT_EQ(decoded[1], PadCell("b", 10));
}

// ---------------------------------------------------------------------------
// Prefix specifics
// ---------------------------------------------------------------------------

TEST(PrefixTest, SharedPrefixStoredOnce) {
  auto compressor = MustMake(CompressionType::kPrefix, CharType(20));
  auto chunk = compressor->NewChunk();
  chunk->Add(Slice(PadCell("order-0001", 20)));
  chunk->Add(Slice(PadCell("order-0002", 20)));
  chunk->Add(Slice(PadCell("order-0003", 20)));
  // 2 (count) + 1 + 9 (prefix "order-000") + 3 * (1 + 1).
  EXPECT_EQ(chunk->Cost(), 2u + 1u + 9u + 3u * 2u);
}

TEST(PrefixTest, PrefixShrinksRetroactively) {
  auto compressor = MustMake(CompressionType::kPrefix, CharType(20));
  auto chunk = compressor->NewChunk();
  chunk->Add(Slice(PadCell("aaaa", 20)));
  chunk->Add(Slice(PadCell("aaab", 20)));
  const size_t with_long_prefix = chunk->Cost();
  chunk->Add(Slice(PadCell("b", 20)));  // prefix collapses to ""
  std::string wire = chunk->Finish();
  EXPECT_EQ(wire.size(), chunk->Cost());
  EXPECT_GT(wire.size(), with_long_prefix);
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  EXPECT_EQ(decoded[0], PadCell("aaaa", 20));
  EXPECT_EQ(decoded[2], PadCell("b", 20));
}

TEST(PrefixTest, ValueEqualToPrefix) {
  auto compressor = MustMake(CompressionType::kPrefix, CharType(10));
  auto chunk = compressor->NewChunk();
  chunk->Add(Slice(PadCell("ab", 10)));
  chunk->Add(Slice(PadCell("abc", 10)));  // prefix "ab"; first has empty suffix
  std::string wire = chunk->Finish();
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressor->DecodeChunk(Slice(wire), &decoded).ok());
  EXPECT_EQ(decoded[0], PadCell("ab", 10));
  EXPECT_EQ(decoded[1], PadCell("abc", 10));
}

// ---------------------------------------------------------------------------
// Scheme / ColumnCompressorSet
// ---------------------------------------------------------------------------

TEST(SchemeTest, UniformAndMixed) {
  Schema schema = std::move(Schema::Make({{"a", CharType(4)},
                                          {"b", Int64Type()}}))
                      .ValueOrDie();
  CompressionScheme uniform =
      CompressionScheme::Uniform(CompressionType::kRle);
  EXPECT_EQ(uniform.ToString(), "rle");
  Result<ColumnCompressorSet> set = ColumnCompressorSet::Make(schema, uniform);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->num_columns(), 2u);
  EXPECT_EQ(set->column(0)->type(), CompressionType::kRle);

  CompressionScheme mixed;
  mixed.per_column = {CompressionType::kNullSuppression,
                      CompressionType::kNone};
  EXPECT_EQ(mixed.ToString(), "mixed(null_suppression,none)");
  Result<ColumnCompressorSet> mixed_set =
      ColumnCompressorSet::Make(schema, mixed);
  ASSERT_TRUE(mixed_set.ok());
  EXPECT_EQ(mixed_set->column(1)->type(), CompressionType::kNone);

  CompressionScheme bad;
  bad.per_column = {CompressionType::kNone};
  EXPECT_FALSE(ColumnCompressorSet::Make(schema, bad).ok());
}

// ---------------------------------------------------------------------------
// CompressedIndexBuilder
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Table>> SmallTable(uint64_t n, uint64_t distinct,
                                          uint64_t seed) {
  return GenerateTable(
      {ColumnSpec::String("s", 16, distinct, FrequencySpec::Uniform(),
                          LengthSpec::Uniform(1, 12)),
       ColumnSpec::Integer("i", distinct)},
      n, seed);
}

class CompressedIndexBuilderTest
    : public ::testing::TestWithParam<CompressionType> {};

TEST_P(CompressedIndexBuilderTest, RoundTripsAllRows) {
  auto table = SmallTable(500, 40, 7);
  ASSERT_TRUE(table.ok());
  CompressionScheme scheme = CompressionScheme::Uniform(GetParam());
  IndexBuildOptions options;
  options.page_size = 1024;  // force multiple pages
  std::vector<Slice> rows;
  for (RowId id = 0; id < (*table)->num_rows(); ++id) {
    rows.push_back((*table)->row(id));
  }
  Result<CompressedIndex> compressed =
      CompressRows((*table)->schema(), scheme, rows, options);
  ASSERT_TRUE(compressed.ok()) << compressed.status();
  EXPECT_EQ(compressed->stats().row_count, 500u);
  EXPECT_GT(compressed->stats().data_pages, 1u);

  std::vector<std::string> decoded;
  ASSERT_TRUE(compressed->DecodeAllRows(&decoded).ok());
  ASSERT_EQ(decoded.size(), 500u);
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(Slice(decoded[i]), rows[i]) << "row " << i;
  }
}

TEST_P(CompressedIndexBuilderTest, PagesNeverOverflow) {
  auto table = SmallTable(400, 25, 11);
  ASSERT_TRUE(table.ok());
  CompressionScheme scheme = CompressionScheme::Uniform(GetParam());
  IndexBuildOptions options;
  options.page_size = 512;
  std::vector<Slice> rows;
  for (RowId id = 0; id < (*table)->num_rows(); ++id) {
    rows.push_back((*table)->row(id));
  }
  Result<CompressedIndex> compressed =
      CompressRows((*table)->schema(), scheme, rows, options);
  ASSERT_TRUE(compressed.ok()) << compressed.status();
  for (const Page& page : compressed->pages()) {
    EXPECT_LE(page.used_bytes(), 512u);
    EXPECT_EQ(page.page_size(), 512u);
  }
  uint64_t total_used = 0;
  for (const Page& page : compressed->pages()) total_used += page.used_bytes();
  EXPECT_EQ(total_used, compressed->stats().used_bytes);
}

/// All types valid for a mixed string+integer table (delta is integer-only).
std::vector<CompressionType> MixedTableCompressionTypes() {
  std::vector<CompressionType> types;
  for (CompressionType t : AllCompressionTypes()) {
    if (t != CompressionType::kDelta && t != CompressionType::kFrameOfReference) {
      types.push_back(t);
    }
  }
  return types;
}

INSTANTIATE_TEST_SUITE_P(AllTypes, CompressedIndexBuilderTest,
                         ::testing::ValuesIn(MixedTableCompressionTypes()),
                         [](const auto& info) {
                           return CompressionTypeName(info.param);
                         });

TEST(CompressedIndexBuilderTest2, DeltaSchemeOnIntegerTable) {
  auto table = GenerateTable({ColumnSpec::Integer("a", 0)}, 3000, 5);
  ASSERT_TRUE(table.ok());
  std::vector<Slice> rows;
  for (RowId id = 0; id < (*table)->num_rows(); ++id) {
    rows.push_back((*table)->row(id));
  }
  IndexBuildOptions options;
  options.page_size = 1024;
  Result<CompressedIndex> compressed = CompressRows(
      (*table)->schema(), CompressionScheme::Uniform(CompressionType::kDelta),
      rows, options);
  ASSERT_TRUE(compressed.ok()) << compressed.status();
  // Sequential int64 keys: ~1 byte per row vs 8 uncompressed.
  EXPECT_LT(compressed->stats().chunk_bytes, 3000u * 3u);
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressed->DecodeAllRows(&decoded).ok());
  ASSERT_EQ(decoded.size(), 3000u);
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(Slice(decoded[i]), rows[i]);
  }
}

TEST(CompressedIndexBuilderTest2, EmptyIndexHasOnePage) {
  Schema schema =
      std::move(Schema::Make({{"a", CharType(4)}})).ValueOrDie();
  Result<CompressedIndex> compressed = CompressRows(
      schema, CompressionScheme::Uniform(CompressionType::kNullSuppression),
      {});
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(compressed->stats().row_count, 0u);
  EXPECT_EQ(compressed->stats().data_pages, 1u);
}

TEST(CompressedIndexBuilderTest2, RejectsWrongRowWidth) {
  Schema schema =
      std::move(Schema::Make({{"a", CharType(4)}})).ValueOrDie();
  auto builder = CompressedIndexBuilder::Make(
      schema, CompressionScheme::Uniform(CompressionType::kNone));
  ASSERT_TRUE(builder.ok());
  std::string bad(2, 'x');
  EXPECT_TRUE((*builder)->Add(Slice(bad)).IsInvalidArgument());
}

TEST(CompressedIndexBuilderTest2, RejectsRowLargerThanPage) {
  Schema schema =
      std::move(Schema::Make({{"a", CharType(400)}})).ValueOrDie();
  IndexBuildOptions options;
  options.page_size = 256;
  auto builder = CompressedIndexBuilder::Make(
      schema, CompressionScheme::Uniform(CompressionType::kNone), options);
  ASSERT_TRUE(builder.ok());
  std::string row(400, 'x');
  EXPECT_TRUE((*builder)->Add(Slice(row)).IsCapacityExceeded());
}

TEST(CompressedIndexBuilderTest2, RejectsTinyAndHugePageSizes) {
  Schema schema =
      std::move(Schema::Make({{"a", CharType(4)}})).ValueOrDie();
  IndexBuildOptions tiny;
  tiny.page_size = 32;
  EXPECT_FALSE(CompressedIndexBuilder::Make(
                   schema, CompressionScheme::Uniform(CompressionType::kNone),
                   tiny)
                   .ok());
  IndexBuildOptions huge;
  huge.page_size = 1 << 20;
  EXPECT_FALSE(CompressedIndexBuilder::Make(
                   schema, CompressionScheme::Uniform(CompressionType::kNone),
                   huge)
                   .ok());
}

TEST(CompressedIndexBuilderTest2, KeepPagesFalseSkipsRetention) {
  auto table = SmallTable(100, 10, 3);
  ASSERT_TRUE(table.ok());
  IndexBuildOptions options;
  options.keep_pages = false;
  std::vector<Slice> rows;
  for (RowId id = 0; id < (*table)->num_rows(); ++id) {
    rows.push_back((*table)->row(id));
  }
  Result<CompressedIndex> compressed = CompressRows(
      (*table)->schema(),
      CompressionScheme::Uniform(CompressionType::kNullSuppression), rows,
      options);
  ASSERT_TRUE(compressed.ok());
  EXPECT_TRUE(compressed->pages().empty());
  EXPECT_GT(compressed->stats().used_bytes, 0u);
  std::vector<std::string> decoded;
  EXPECT_TRUE(compressed->DecodeAllRows(&decoded).IsInvalidArgument());
}

TEST(CompressedIndexBuilderTest2, GlobalDictAuxPagesCounted) {
  auto table = SmallTable(300, 200, 5);
  ASSERT_TRUE(table.ok());
  std::vector<Slice> rows;
  for (RowId id = 0; id < (*table)->num_rows(); ++id) {
    rows.push_back((*table)->row(id));
  }
  IndexBuildOptions options;
  options.page_size = 512;
  Result<CompressedIndex> compressed = CompressRows(
      (*table)->schema(),
      CompressionScheme::Uniform(CompressionType::kDictionaryGlobal), rows,
      options);
  ASSERT_TRUE(compressed.ok());
  EXPECT_GT(compressed->stats().aux_bytes, 0u);
  EXPECT_GT(compressed->stats().aux_pages, 0u);
  // aux_pages covers aux_bytes.
  EXPECT_GE(compressed->stats().aux_pages * (512 - kPageHeaderSize),
            compressed->stats().aux_bytes);
}

TEST(CompressedIndexBuilderTest2, ZeroBitPointerPagesRespectRowCountLimit) {
  // A single distinct value compresses to 0-bit pointers: without a row cap
  // the u16 chunk row count would wrap at 65536 rows. 70k identical rows
  // must round-trip exactly.
  Schema schema =
      std::move(Schema::Make({{"a", CharType(4)}})).ValueOrDie();
  RowCodec codec(schema);
  std::string row;
  ASSERT_TRUE(codec.Encode({Value::Str("x")}, &row).ok());
  auto builder = CompressedIndexBuilder::Make(
      schema, CompressionScheme::Uniform(CompressionType::kDictionaryPage));
  ASSERT_TRUE(builder.ok());
  const uint64_t n = 70000;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE((*builder)->Add(Slice(row)).ok());
  }
  Result<CompressedIndex> compressed = (*builder)->Finish();
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(compressed->stats().row_count, n);
  EXPECT_GE(compressed->stats().data_pages, 2u);  // capped at 65535 rows/page
  std::vector<std::string> decoded;
  ASSERT_TRUE(compressed->DecodeAllRows(&decoded).ok());
  EXPECT_EQ(decoded.size(), n);
}

TEST(CompressedIndexBuilderTest2, PagingEffectsInflateDictionaryEntries) {
  // With few distinct values spread over many pages, sum_i Pg(i) > d.
  auto table = SmallTable(2000, 8, 13);
  ASSERT_TRUE(table.ok());
  std::vector<Slice> rows;
  for (RowId id = 0; id < (*table)->num_rows(); ++id) {
    rows.push_back((*table)->row(id));
  }
  IndexBuildOptions options;
  options.page_size = 512;
  options.keep_pages = false;
  Result<CompressedIndex> paged = CompressRows(
      (*table)->schema(),
      CompressionScheme::Uniform(CompressionType::kDictionaryPage), rows,
      options);
  ASSERT_TRUE(paged.ok());
  Result<CompressedIndex> global = CompressRows(
      (*table)->schema(),
      CompressionScheme::Uniform(CompressionType::kDictionaryGlobal), rows,
      options);
  ASSERT_TRUE(global.ok());
  EXPECT_GT(paged->stats().dictionary_entries,
            global->stats().dictionary_entries);
  EXPECT_GT(paged->stats().data_pages, 1u);
}

}  // namespace
}  // namespace cfest
