// Tests for the sampling substrate: correctness of each sampler's sample
// size and support, plus statistical properties (uniform inclusion,
// reservoir uniformity, Bernoulli concentration, block contiguity).

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sampling/sampler.h"
#include "storage/table.h"

namespace cfest {
namespace {

std::unique_ptr<Table> SequentialTable(uint64_t n) {
  Schema schema =
      std::move(Schema::Make({{"v", Int64Type()}})).ValueOrDie();
  TableBuilder builder(schema);
  builder.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(builder.Append({Value::Int(static_cast<int64_t>(i))}).ok());
  }
  return builder.Finish();
}

// ---------------------------------------------------------------------------
// Shared behaviour across all samplers
// ---------------------------------------------------------------------------

struct SamplerCase {
  std::unique_ptr<RowSampler> (*make)();
  const char* label;
  bool fixed_size;  // sample size deterministic given f*n
};

std::unique_ptr<RowSampler> MakeBlockDefault() { return MakeBlockSampler(16); }

class SamplerContractTest : public ::testing::TestWithParam<SamplerCase> {};

TEST_P(SamplerContractTest, RejectsBadFractions) {
  auto sampler = GetParam().make();
  auto table = SequentialTable(100);
  Random rng(1);
  EXPECT_FALSE(sampler->SampleIds(*table, 0.0, &rng).ok());
  EXPECT_FALSE(sampler->SampleIds(*table, -0.5, &rng).ok());
  EXPECT_FALSE(sampler->SampleIds(*table, 1.5, &rng).ok());
}

TEST_P(SamplerContractTest, RejectsEmptyTable) {
  auto sampler = GetParam().make();
  auto table = SequentialTable(0);
  Random rng(1);
  EXPECT_FALSE(sampler->SampleIds(*table, 0.1, &rng).ok());
}

TEST_P(SamplerContractTest, IdsAreValidRows) {
  auto sampler = GetParam().make();
  auto table = SequentialTable(1000);
  Random rng(7);
  auto ids = sampler->SampleIds(*table, 0.05, &rng);
  ASSERT_TRUE(ids.ok());
  EXPECT_FALSE(ids->empty());
  for (RowId id : *ids) EXPECT_LT(id, 1000u);
}

TEST_P(SamplerContractTest, DeterministicGivenSeed) {
  auto sampler = GetParam().make();
  auto table = SequentialTable(500);
  Random rng1(99), rng2(99);
  auto a = sampler->SampleIds(*table, 0.1, &rng1);
  auto b = sampler->SampleIds(*table, 0.1, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_P(SamplerContractTest, MaterializedSampleMatchesIds) {
  auto sampler = GetParam().make();
  auto table = SequentialTable(200);
  Random rng_ids(5), rng_rows(5);
  auto ids = sampler->SampleIds(*table, 0.2, &rng_ids);
  auto sample = sampler->Sample(*table, 0.2, &rng_rows);
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(sample.ok());
  ASSERT_EQ((*sample)->num_rows(), ids->size());
  for (size_t i = 0; i < ids->size(); ++i) {
    EXPECT_EQ((*sample)->row(i), table->row((*ids)[i]));
  }
}

TEST_P(SamplerContractTest, FullFractionCoversTable) {
  if (!GetParam().fixed_size) GTEST_SKIP() << "size is probabilistic";
  auto sampler = GetParam().make();
  auto table = SequentialTable(64);
  Random rng(3);
  auto ids = sampler->SampleIds(*table, 1.0, &rng);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 64u);
}

std::unique_ptr<RowSampler> MakeStratifiedDefault() {
  return MakeStratifiedSampler(8);
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplers, SamplerContractTest,
    ::testing::Values(
        SamplerCase{&MakeUniformWithReplacementSampler, "uniform_wr", true},
        SamplerCase{&MakeUniformWithoutReplacementSampler, "uniform_wor",
                    true},
        SamplerCase{&MakeBernoulliSampler, "bernoulli", false},
        SamplerCase{&MakeReservoirSampler, "reservoir", true},
        SamplerCase{&MakeBlockDefault, "block", false},
        SamplerCase{&MakeStratifiedDefault, "stratified", false}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(StratifiedTest, EveryStratumRepresented) {
  auto sampler = MakeStratifiedSampler(10);
  auto table = SequentialTable(1000);  // strata of 100 rows each
  Random rng(43);
  auto ids = sampler->SampleIds(*table, 0.05, &rng);
  ASSERT_TRUE(ids.ok());
  std::vector<int> per_stratum(10, 0);
  for (RowId id : *ids) per_stratum[id / 100]++;
  for (int count : per_stratum) {
    EXPECT_EQ(count, 5);  // round(0.05 * 100) from each stratum, WOR
  }
  std::set<RowId> unique(ids->begin(), ids->end());
  EXPECT_EQ(unique.size(), ids->size());  // WOR within strata
}

TEST(StratifiedTest, MoreStrataThanRowsDegradesGracefully) {
  auto sampler = MakeStratifiedSampler(64);
  auto table = SequentialTable(10);
  Random rng(47);
  auto ids = sampler->SampleIds(*table, 0.5, &rng);
  ASSERT_TRUE(ids.ok());
  EXPECT_FALSE(ids->empty());
  for (RowId id : *ids) EXPECT_LT(id, 10u);
}

// ---------------------------------------------------------------------------
// Sampler-specific properties
// ---------------------------------------------------------------------------

TEST(UniformWrTest, DrawsExactCountAllowingRepeats) {
  auto sampler = MakeUniformWithReplacementSampler();
  auto table = SequentialTable(50);
  Random rng(11);
  auto ids = sampler->SampleIds(*table, 1.0, &rng);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 50u);
  std::set<RowId> unique(ids->begin(), ids->end());
  // With replacement, 50 draws from 50 rows almost surely repeat.
  EXPECT_LT(unique.size(), 50u);
}

TEST(UniformWrTest, InclusionApproximatelyUniform) {
  auto sampler = MakeUniformWithReplacementSampler();
  auto table = SequentialTable(20);
  Random rng(13);
  std::vector<uint64_t> hits(20, 0);
  const int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    auto ids = sampler->SampleIds(*table, 0.5, &rng);
    ASSERT_TRUE(ids.ok());
    for (RowId id : *ids) hits[id]++;
  }
  // Each row expects kTrials * 10 / 20 = 200 hits; allow generous slack.
  for (uint64_t h : hits) {
    EXPECT_GT(h, 120u);
    EXPECT_LT(h, 290u);
  }
}

TEST(UniformWorTest, NoDuplicates) {
  auto sampler = MakeUniformWithoutReplacementSampler();
  auto table = SequentialTable(300);
  Random rng(17);
  auto ids = sampler->SampleIds(*table, 0.33, &rng);
  ASSERT_TRUE(ids.ok());
  std::set<RowId> unique(ids->begin(), ids->end());
  EXPECT_EQ(unique.size(), ids->size());
  EXPECT_EQ(ids->size(), 99u);  // round(0.33 * 300)
}

TEST(UniformWorTest, EveryRowEquallyLikely) {
  auto sampler = MakeUniformWithoutReplacementSampler();
  auto table = SequentialTable(10);
  Random rng(19);
  std::vector<uint64_t> hits(10, 0);
  const int kTrials = 1000;
  for (int t = 0; t < kTrials; ++t) {
    auto ids = sampler->SampleIds(*table, 0.3, &rng);
    ASSERT_TRUE(ids.ok());
    for (RowId id : *ids) hits[id]++;
  }
  // Inclusion probability 0.3 -> 300 expected hits per row.
  for (uint64_t h : hits) {
    EXPECT_GT(h, 220u);
    EXPECT_LT(h, 380u);
  }
}

TEST(BernoulliTest, SizeConcentratesAroundFN) {
  auto sampler = MakeBernoulliSampler();
  auto table = SequentialTable(10000);
  Random rng(23);
  auto ids = sampler->SampleIds(*table, 0.1, &rng);
  ASSERT_TRUE(ids.ok());
  // Binomial(10000, 0.1): mean 1000, sd ~30. 6 sigma band.
  EXPECT_GT(ids->size(), 820u);
  EXPECT_LT(ids->size(), 1180u);
  // Ids must be strictly increasing (scan order).
  for (size_t i = 1; i < ids->size(); ++i) {
    EXPECT_LT((*ids)[i - 1], (*ids)[i]);
  }
}

TEST(ReservoirTest, UniformInclusionOverStream) {
  auto sampler = MakeReservoirSampler();
  auto table = SequentialTable(40);
  Random rng(29);
  std::vector<uint64_t> hits(40, 0);
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    auto ids = sampler->SampleIds(*table, 0.25, &rng);
    ASSERT_TRUE(ids.ok());
    EXPECT_EQ(ids->size(), 10u);
    std::set<RowId> unique(ids->begin(), ids->end());
    EXPECT_EQ(unique.size(), 10u);
    for (RowId id : *ids) hits[id]++;
  }
  // Expected hits per row: 2000 * 0.25 = 500. Late stream positions must not
  // be disadvantaged (the classic reservoir bug).
  for (uint64_t h : hits) {
    EXPECT_GT(h, 380u);
    EXPECT_LT(h, 620u);
  }
}

TEST(BlockSamplerTest, ReturnsWholeContiguousBlocks) {
  auto sampler = MakeBlockSampler(25);
  auto table = SequentialTable(1000);
  Random rng(31);
  auto ids = sampler->SampleIds(*table, 0.1, &rng);
  ASSERT_TRUE(ids.ok());
  EXPECT_GE(ids->size(), 100u);
  EXPECT_EQ(ids->size() % 25, 0u);
  // Each run of 25 ids is one contiguous block starting at a multiple of 25.
  for (size_t i = 0; i < ids->size(); i += 25) {
    EXPECT_EQ((*ids)[i] % 25, 0u);
    for (size_t j = 1; j < 25; ++j) {
      EXPECT_EQ((*ids)[i + j], (*ids)[i] + j);
    }
  }
}

TEST(BlockSamplerTest, TailBlockMayBeShort) {
  auto sampler = MakeBlockSampler(30);
  auto table = SequentialTable(100);  // blocks: 30,30,30,10
  Random rng(37);
  auto ids = sampler->SampleIds(*table, 1.0, &rng);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 100u);
  std::set<RowId> unique(ids->begin(), ids->end());
  EXPECT_EQ(unique.size(), 100u);
}

TEST(BlockSamplerTest, DefaultBlockSizeFromPageCapacity) {
  auto sampler = MakeBlockSampler(0);
  auto table = SequentialTable(100000);
  Random rng(41);
  auto ids = sampler->SampleIds(*table, 0.01, &rng);
  ASSERT_TRUE(ids.ok());
  // 8-byte rows + 4-byte slots on 8 KiB pages -> 680 rows per block.
  EXPECT_GE(ids->size(), 1000u);
  EXPECT_LE(ids->size(), 1000u + 680u);
}

TEST(MaterializeTest, RejectsOutOfRangeIds) {
  auto table = SequentialTable(10);
  Result<std::unique_ptr<Table>> bad = MaterializeSample(*table, {3, 99});
  EXPECT_TRUE(bad.status().IsOutOfRange());
}

TEST(MaterializeTest, PreservesDrawOrderAndDuplicates) {
  auto table = SequentialTable(10);
  Result<std::unique_ptr<Table>> sample = MaterializeSample(*table, {5, 5, 1});
  ASSERT_TRUE(sample.ok());
  ASSERT_EQ((*sample)->num_rows(), 3u);
  EXPECT_EQ((*sample)->DecodeRow(0)->at(0).AsInt(), 5);
  EXPECT_EQ((*sample)->DecodeRow(1)->at(0).AsInt(), 5);
  EXPECT_EQ((*sample)->DecodeRow(2)->at(0).AsInt(), 1);
}

TEST(FractionTest, Validation) {
  EXPECT_TRUE(CheckFraction(0.5).ok());
  EXPECT_TRUE(CheckFraction(1.0).ok());
  EXPECT_FALSE(CheckFraction(0.0).ok());
  EXPECT_FALSE(CheckFraction(1.0001).ok());
}

}  // namespace
}  // namespace cfest
